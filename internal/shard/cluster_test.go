package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/stream"
)

// member is one in-process cluster daemon: a durable service with its
// shard agent, HTTP surface (shard endpoints + session API), and
// stream listener — the same composition cmd/rdtserved wires up.
type member struct {
	name string
	dir  string
	svc  *service.Service
	node *Node
	hsrv *service.Server
	ssrv *stream.Server
}

func startMember(t *testing.T, name, dir string) *member {
	t.Helper()
	reg := obs.NewRegistry()
	svc, err := service.New(service.Config{DataDir: dir, SnapshotEvery: 16, Registry: reg})
	if err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	if _, err := svc.Recover(); err != nil {
		t.Fatalf("recover %s: %v", name, err)
	}
	t0 := time.Now()
	logf := func(format string, args ...any) {
		t.Logf("[%s +%5.1fms] "+format, append([]any{name, float64(time.Since(t0).Microseconds()) / 1000}, args...)...)
	}
	node, err := NewNode(NodeConfig{Self: name, Service: svc, Registry: reg, Logf: logf})
	if err != nil {
		t.Fatalf("node %s: %v", name, err)
	}
	mux := http.NewServeMux()
	node.Register(mux)
	mux.Handle("/", service.NewHandler(svc))
	hsrv, err := service.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatalf("serve %s: %v", name, err)
	}
	ssrv, err := stream.Serve("127.0.0.1:0", stream.Config{Service: svc, Registry: reg})
	if err != nil {
		t.Fatalf("stream serve %s: %v", name, err)
	}
	return &member{name: name, dir: dir, svc: svc, node: node, hsrv: hsrv, ssrv: ssrv}
}

func (m *member) Member() Member {
	return Member{Name: m.name, HTTP: m.hsrv.Addr(), Stream: m.ssrv.Addr()}
}

// stop is a graceful shutdown: listeners down, state drained to disk.
func (m *member) stop(t *testing.T) {
	t.Helper()
	_ = m.ssrv.Close()
	_ = m.hsrv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.svc.Drain(ctx); err != nil {
		t.Errorf("drain %s: %v", m.name, err)
	}
}

// kill drops the listeners without draining: the crash case. The
// service's data-dir lock stays held, so a restart must either reuse
// the drained service or run from a copied directory.
func (m *member) kill() {
	_ = m.ssrv.Close()
	_ = m.hsrv.Close()
}

func adoptAll(t *testing.T, r *Ring, ms ...*member) {
	t.Helper()
	for _, m := range ms {
		if _, err := m.node.AdoptRing(r); err != nil {
			t.Fatalf("adopt on %s: %v", m.name, err)
		}
	}
}

// idOwnedBy probes for a session id the ring assigns to the named member.
func idOwnedBy(t *testing.T, r *Ring, owner, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if r.Owner(id).Name == owner {
			return id
		}
	}
	t.Fatalf("no id owned by %s in 10000 probes", owner)
	return ""
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return resp, respBody
}

// TestClusterHTTPRedirect exercises the smart-client path: a member
// answers 307 with the owner's address for a session it does not own.
func TestClusterHTTPRedirect(t *testing.T) {
	a := startMember(t, "a", t.TempDir())
	defer a.stop(t)
	b := startMember(t, "b", t.TempDir())
	defer b.stop(t)
	ring, err := New(1, 0, []Member{a.Member(), b.Member()})
	if err != nil {
		t.Fatal(err)
	}
	adoptAll(t, ring, a, b)

	id := idOwnedBy(t, ring, "a", "redir")
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	// Create at the wrong member: 307 at the owner.
	resp, _ := postJSON(t, noFollow, "http://"+b.hsrv.Addr()+"/v1/sessions",
		map[string]any{"id": id, "n": 2})
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("create at non-owner: got %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Rdt-Owner"); got != "a" {
		t.Fatalf("X-Rdt-Owner = %q, want %q", got, "a")
	}
	if loc := resp.Header.Get("Location"); !bytes.Contains([]byte(loc), []byte(a.hsrv.Addr())) {
		t.Fatalf("Location %q does not point at owner %s", loc, a.hsrv.Addr())
	}

	// A redirect-following client lands on the owner transparently.
	resp, body := postJSON(t, http.DefaultClient, "http://"+b.hsrv.Addr()+"/v1/sessions",
		map[string]any{"id": id, "n": 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create via redirect: got %d: %s", resp.StatusCode, body)
	}
	if !a.svc.HasLocal(id) {
		t.Fatalf("session %s did not land on owner a", id)
	}
}

// TestClusterRebalanceParity is the subsystem's ground truth: a router
// fronts three daemons, one member leaves and another joins mid-ingest,
// and afterwards every session's verdict — and the rgraph batch checker
// over the reference pattern — is bit-identical to an uninterrupted
// single-service run of the same events. Equal events_applied across
// the handoffs is the zero-lost, zero-duplicated proof.
func TestClusterRebalanceParity(t *testing.T) {
	a := startMember(t, "a", t.TempDir())
	defer a.stop(t)
	b := startMember(t, "b", t.TempDir())
	defer b.stop(t)
	c := startMember(t, "c", t.TempDir())
	defer c.stop(t)
	d := startMember(t, "d", t.TempDir()) // joins mid-run
	defer d.stop(t)

	rt, err := NewRouter(RouterConfig{
		Members:  []Member{a.Member(), b.Member(), c.Member()},
		Registry: obs.NewRegistry(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler(nil))
	defer front.Close()

	const (
		perMember = 3
		procs     = 3
		batchSize = 25
		batches   = 8 // half before the membership change, half after
	)
	ingest := func(id string, events []service.Event) {
		t.Helper()
		resp, body := postJSON(t, http.DefaultClient, front.URL+"/v1/sessions/"+id+"/events", events)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %s: got %d: %s", id, resp.StatusCode, body)
		}
	}
	gen := func(i int) *stream.Traffic {
		tr, err := stream.NewTraffic("random", procs, int64(7000+i))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Probe ids so every initial member — c especially, whose departure
	// must trigger handoffs — owns some sessions.
	var ids []string
	for _, owner := range []string{"a", "b", "c"} {
		for k := 0; k < perMember; k++ {
			ids = append(ids, idOwnedBy(t, rt.Ring(), owner, fmt.Sprintf("sess-%s%d", owner, k)))
		}
	}
	sessions := len(ids)
	gens := make([]*stream.Traffic, sessions)
	for i := range ids {
		gens[i] = gen(i)
		resp, body := postJSON(t, http.DefaultClient, front.URL+"/v1/sessions",
			map[string]any{"id": ids[i], "n": procs})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: got %d: %s", ids[i], resp.StatusCode, body)
		}
	}

	// The reference: one uninterrupted in-memory service fed the same
	// generators (re-seeded below via allEvents).
	allEvents := make([][]service.Event, sessions)

	for phase := 0; phase < 2; phase++ {
		for round := 0; round < batches/2; round++ {
			for i, id := range ids {
				batch := gens[i].Next(nil, batchSize)
				allEvents[i] = append(allEvents[i], batch...)
				ingest(id, batch)
			}
		}
		if phase == 0 {
			// Mid-ingest: c leaves, d joins.
			resp, body := postJSON(t, http.DefaultClient, front.URL+"/v1/shard/members",
				memberChange{Action: "remove", Member: Member{Name: "c"}})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("remove c: got %d: %s", resp.StatusCode, body)
			}
			resp, body = postJSON(t, http.DefaultClient, front.URL+"/v1/shard/members",
				memberChange{Action: "add", Member: d.Member()})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("add d: got %d: %s", resp.StatusCode, body)
			}
		}
	}
	for _, m := range []*member{a, b, c, d} {
		m.node.WaitRebalance()
	}

	// The departed member holds nothing.
	if left, err := c.svc.SessionsOnDisk(); err != nil || len(left) != 0 {
		t.Fatalf("departed member c still holds sessions %v (err %v)", left, err)
	}
	if ring := rt.Ring(); ring.Epoch != 3 || len(ring.Members) != 3 {
		t.Fatalf("final ring: epoch %d with %d members, want epoch 3 with 3", ring.Epoch, len(ring.Members))
	}

	ref, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer dcancel()
		_ = ref.Drain(dctx)
	}()
	byName := map[string]*member{"a": a, "b": b, "d": d}
	for i, id := range ids {
		// Seal through the router, then read the verdict through it too.
		resp, body := postJSON(t, http.DefaultClient, front.URL+"/v1/sessions/"+id+"/seal", struct{}{})
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seal %s: got %d: %s", id, resp.StatusCode, body)
		}
		gresp, err := http.Get(front.URL + "/v1/sessions/" + id + "/verdict?flush=1")
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := io.ReadAll(gresp.Body)
		_ = gresp.Body.Close()
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("verdict %s: got %d: %s", id, gresp.StatusCode, gotJSON)
		}

		refSess, err := ref.CreateSession(id, procs)
		if err != nil {
			t.Fatal(err)
		}
		if err := refSess.Enqueue(allEvents[i]); err != nil {
			t.Fatal(err)
		}
		if err := refSess.Seal(ctx); err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(refSess.Verdict(0))
		if err != nil {
			t.Fatal(err)
		}
		var got, want service.Verdict
		if err := json.Unmarshal(gotJSON, &got); err != nil {
			t.Fatalf("decode cluster verdict %s: %v", id, err)
		}
		if err := json.Unmarshal(wantJSON, &want); err != nil {
			t.Fatal(err)
		}
		// InFlight counts queued batches and may differ transiently; the
		// flush barrier should have zeroed both, so compare everything.
		gotNorm, _ := json.Marshal(got)
		wantNorm, _ := json.Marshal(want)
		if !bytes.Equal(gotNorm, wantNorm) {
			t.Errorf("session %s: cluster verdict diverged after rebalance\n got: %s\nwant: %s",
				id, gotNorm, wantNorm)
		}

		// Batch checker over the reference pattern agrees with the verdict.
		p, _, err := refSess.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rgraph.CheckRDT(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.RDT != got.RDT || rep.RPathPairs != got.RPathPairs || rep.TrackablePairs != got.TrackablePairs {
			t.Errorf("session %s: verdict (rdt=%v rpaths=%d trackable=%d) disagrees with batch CheckRDT (rdt=%v rpaths=%d trackable=%d)",
				id, got.RDT, got.RPathPairs, got.TrackablePairs, rep.RDT, rep.RPathPairs, rep.TrackablePairs)
		}

		// The session lives exactly on its ring owner.
		owner := rt.Ring().Owner(id).Name
		m, ok := byName[owner]
		if !ok {
			t.Fatalf("session %s owned by departed/unknown member %q", id, owner)
		}
		if !m.svc.HasLocal(id) {
			t.Errorf("session %s not on its owner %s", id, owner)
		}
	}

	// Handoffs actually happened: c pushed its sessions out, and the
	// pull/push counters on the survivors saw them arrive.
	if c.node.cOut.Value() == 0 {
		t.Error("departed member c recorded no outbound handoffs")
	}
	in := a.node.cIn.Value() + b.node.cIn.Value() + d.node.cIn.Value()
	if in == 0 {
		t.Error("no member recorded an inbound handoff")
	}
}

// TestClusterStreamMoved drives the binary wire at the wrong member and
// lets the pool follow the MOVED redirect to the owner.
func TestClusterStreamMoved(t *testing.T) {
	a := startMember(t, "a", t.TempDir())
	defer a.stop(t)
	b := startMember(t, "b", t.TempDir())
	defer b.stop(t)
	ring, err := New(1, 0, []Member{a.Member(), b.Member()})
	if err != nil {
		t.Fatal(err)
	}
	adoptAll(t, ring, a, b)

	id := idOwnedBy(t, ring, "b", "strm")
	// Seed the pool with only the non-owner: reaching b proves the
	// MOVED hop worked.
	pool := stream.NewPool([]string{a.ssrv.Addr()})
	defer pool.Close()
	ch, addr, err := pool.Open(id, 3, "prod-1")
	if err != nil {
		t.Fatal(err)
	}
	if addr != b.ssrv.Addr() {
		t.Fatalf("pool landed on %s, want owner %s", addr, b.ssrv.Addr())
	}

	tr, err := stream.NewTraffic("ring", 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 4; i++ {
		batch := tr.Next(nil, 20)
		if err := ch.Send(batch); err != nil {
			t.Fatalf("send: %v", err)
		}
		total += int64(len(batch))
	}
	if err := ch.Seal(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ch.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err := b.svc.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	v := sess.Verdict(0)
	if v.EventsApplied != total {
		t.Fatalf("owner applied %d events, want %d", v.EventsApplied, total)
	}
	if v.State != "sealed" {
		t.Fatalf("state %q, want sealed", v.State)
	}
}

// TestClusterPullOnMiss moves a passivated session by ring change alone
// and touches it on the new owner before the old owner's rebalance push
// can land, forcing the pull-on-miss path.
func TestClusterPullOnMiss(t *testing.T) {
	a := startMember(t, "a", t.TempDir())
	defer a.stop(t)
	b := startMember(t, "b", t.TempDir())
	defer b.stop(t)

	solo, err := New(1, 0, []Member{a.Member()})
	if err != nil {
		t.Fatal(err)
	}
	adoptAll(t, solo, a, b)

	both, err := New(2, 0, []Member{a.Member(), b.Member()})
	if err != nil {
		t.Fatal(err)
	}
	id := idOwnedBy(t, both, "b", "pull")

	sess, err := a.svc.CreateSession(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	events := []service.Event{
		{Op: service.OpCheckpoint, Proc: 0},
		{Op: service.OpSend, Proc: 0, Peer: 1, Msg: 1},
		{Op: service.OpDeliver, Msg: 1},
		{Op: service.OpCheckpoint, Proc: 1},
	}
	if err := sess.Enqueue(events); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sess.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// b adopts first and is queried immediately — a, still on the old
	// ring, would even refuse an export until it adopts too. The pull
	// retry loop inside the gate rides out that window.
	adoptAll(t, both, b)
	done := make(chan error, 1)
	go func() {
		got, err := b.svc.Session(id)
		if err != nil {
			done <- err
			return
		}
		v := got.Verdict(0)
		if v.EventsApplied != int64(len(events)) {
			done <- fmt.Errorf("pulled session applied %d events, want %d", v.EventsApplied, len(events))
			return
		}
		done <- nil
	}()
	time.Sleep(50 * time.Millisecond)
	adoptAll(t, both, a)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if b.node.cPulls.Value() == 0 {
		t.Error("pull-on-miss path not taken")
	}
	a.node.WaitRebalance()
	b.node.WaitRebalance()
}
