// Package workload implements the communication environments of the
// paper's simulation study — random point-to-point traffic, overlapping
// group communication, and client/server request chains — plus two extra
// environments (ring and burst) used by the ablation experiments.
package workload

import (
	"fmt"

	"github.com/rdt-go/rdt/internal/sim"
)

// Random is the random communication environment: every process sends
// messages to uniformly chosen peers, with exponentially distributed gaps.
type Random struct {
	// MeanGap is the mean time between two sends of one process.
	MeanGap float64
}

var _ sim.Workload = (*Random)(nil)

// Name implements sim.Workload.
func (w *Random) Name() string { return "random" }

// Start implements sim.Workload.
func (w *Random) Start(e *sim.Engine) {
	for i := 0; i < e.N(); i++ {
		w.scheduleNext(e, i)
	}
}

// OnDeliver implements sim.Workload.
func (w *Random) OnDeliver(*sim.Engine, sim.Delivery) {}

func (w *Random) scheduleNext(e *sim.Engine, proc int) {
	e.At(e.Exp(w.MeanGap), func() {
		if !e.Active() {
			return
		}
		dest := e.Rand().Intn(e.N() - 1)
		if dest >= proc {
			dest++
		}
		e.Send(proc, dest, nil)
		w.scheduleNext(e, proc)
	})
}

// Groups is the overlapping group communication environment: processes are
// organized in groups that share members; most traffic stays within a
// process's groups.
type Groups struct {
	// GroupSize is the number of processes per group.
	GroupSize int
	// Overlap is how many processes consecutive groups share.
	Overlap int
	// IntraBias is the probability that a send targets a peer sharing a
	// group with the sender.
	IntraBias float64
	// MeanGap is the mean time between two sends of one process.
	MeanGap float64

	peers [][]int
}

var _ sim.Workload = (*Groups)(nil)

// Name implements sim.Workload.
func (w *Groups) Name() string { return "groups" }

// Start implements sim.Workload.
func (w *Groups) Start(e *sim.Engine) {
	w.peers = groupPeers(e.N(), w.GroupSize, w.Overlap)
	for i := 0; i < e.N(); i++ {
		w.scheduleNext(e, i)
	}
}

// OnDeliver implements sim.Workload.
func (w *Groups) OnDeliver(*sim.Engine, sim.Delivery) {}

func (w *Groups) scheduleNext(e *sim.Engine, proc int) {
	e.At(e.Exp(w.MeanGap), func() {
		if !e.Active() {
			return
		}
		var dest int
		peers := w.peers[proc]
		if len(peers) > 0 && e.Rand().Float64() < w.IntraBias {
			dest = peers[e.Rand().Intn(len(peers))]
		} else {
			dest = e.Rand().Intn(e.N() - 1)
			if dest >= proc {
				dest++
			}
		}
		e.Send(proc, dest, nil)
		w.scheduleNext(e, proc)
	})
}

// groupPeers computes, for each process, the distinct other processes that
// share at least one group with it. Groups of the given size start every
// (size - overlap) processes and wrap around, so every process belongs to
// at least one group and consecutive groups overlap.
func groupPeers(n, size, overlap int) [][]int {
	if size < 2 {
		size = 2
	}
	if overlap < 0 {
		overlap = 0
	}
	if overlap >= size {
		overlap = size - 1
	}
	stride := size - overlap
	inGroup := make([]map[int]bool, n)
	for i := range inGroup {
		inGroup[i] = make(map[int]bool)
	}
	for start := 0; start < n; start += stride {
		for a := 0; a < size; a++ {
			for b := 0; b < size; b++ {
				pa, pb := (start+a)%n, (start+b)%n
				if pa != pb {
					inGroup[pa][pb] = true
				}
			}
		}
	}
	peers := make([][]int, n)
	for i := range peers {
		for p := 0; p < n; p++ {
			if inGroup[i][p] {
				peers[i] = append(peers[i], p)
			}
		}
	}
	return peers
}

// msgKind distinguishes client/server payloads.
type msgKind int

const (
	msgRequest msgKind = iota + 1
	msgReply
)

// ClientServer is the client/server environment of the paper: process 0 is
// the client, processes 1..n-1 form a server chain. The client sends a
// request to S1; a server that receives a request either replies to its
// requester or, with probability Forward, forwards the request up the
// chain and waits; replies cascade back down to the client, which thinks
// and then issues the next request. The causal past of any message
// contains the whole computation, which maximizes what the protocols can
// learn from piggybacks.
type ClientServer struct {
	// Forward is the probability a server forwards a request instead of
	// replying (the last server always replies).
	Forward float64
	// Think is the client's mean think time between a reply and the next
	// request.
	Think float64
	// Service is a server's mean service time before it forwards or
	// replies.
	Service float64
}

var _ sim.Workload = (*ClientServer)(nil)

// Name implements sim.Workload.
func (w *ClientServer) Name() string { return "client-server" }

// Start implements sim.Workload.
func (w *ClientServer) Start(e *sim.Engine) {
	e.At(e.Exp(w.Think), func() { e.Send(0, 1, msgRequest) })
}

// OnDeliver implements sim.Workload.
func (w *ClientServer) OnDeliver(e *sim.Engine, d sim.Delivery) {
	kind, ok := d.Payload.(msgKind)
	if !ok {
		return
	}
	switch kind {
	case msgRequest:
		server := d.To
		e.At(e.Exp(w.Service), func() {
			if server < e.N()-1 && e.Rand().Float64() < w.Forward {
				e.Send(server, server+1, msgRequest)
				return
			}
			e.Send(server, server-1, msgReply)
		})
	case msgReply:
		if d.To == 0 {
			// The client got its answer; think, then ask again.
			if e.Active() {
				e.At(e.Exp(w.Think), func() {
					if e.Active() {
						e.Send(0, 1, msgRequest)
					}
				})
			}
			return
		}
		server := d.To
		e.At(e.Exp(w.Service), func() { e.Send(server, server-1, msgReply) })
	}
}

// Ring is an extension environment: every process periodically sends to
// its successor on a ring, producing long cyclic dependency chains.
type Ring struct {
	// MeanGap is the mean time between two sends of one process.
	MeanGap float64
}

var _ sim.Workload = (*Ring)(nil)

// Name implements sim.Workload.
func (w *Ring) Name() string { return "ring" }

// Start implements sim.Workload.
func (w *Ring) Start(e *sim.Engine) {
	for i := 0; i < e.N(); i++ {
		w.scheduleNext(e, i)
	}
}

// OnDeliver implements sim.Workload.
func (w *Ring) OnDeliver(*sim.Engine, sim.Delivery) {}

func (w *Ring) scheduleNext(e *sim.Engine, proc int) {
	e.At(e.Exp(w.MeanGap), func() {
		if !e.Active() {
			return
		}
		e.Send(proc, (proc+1)%e.N(), nil)
		w.scheduleNext(e, proc)
	})
}

// Burst is an extension environment: processes alternate quiet phases with
// bursts of back-to-back sends to random peers, stressing the sent_to
// tracking of condition C1.
type Burst struct {
	// MeanQuiet is the mean gap between bursts of one process.
	MeanQuiet float64
	// BurstLen is the number of messages per burst.
	BurstLen int
}

var _ sim.Workload = (*Burst)(nil)

// Name implements sim.Workload.
func (w *Burst) Name() string { return "burst" }

// Start implements sim.Workload.
func (w *Burst) Start(e *sim.Engine) {
	for i := 0; i < e.N(); i++ {
		w.scheduleNext(e, i)
	}
}

// OnDeliver implements sim.Workload.
func (w *Burst) OnDeliver(*sim.Engine, sim.Delivery) {}

func (w *Burst) scheduleNext(e *sim.Engine, proc int) {
	e.At(e.Exp(w.MeanQuiet), func() {
		if !e.Active() {
			return
		}
		for b := 0; b < w.BurstLen; b++ {
			dest := e.Rand().Intn(e.N() - 1)
			if dest >= proc {
				dest++
			}
			e.Send(proc, dest, nil)
		}
		w.scheduleNext(e, proc)
	})
}

// ByName constructs the named environment with its default parameters; it
// is the registry used by the CLI tools.
func ByName(name string) (sim.Workload, error) {
	switch name {
	case "random":
		return &Random{MeanGap: 1}, nil
	case "groups":
		return &Groups{GroupSize: 3, Overlap: 1, IntraBias: 0.9, MeanGap: 1}, nil
	case "client-server":
		return &ClientServer{Forward: 0.5, Think: 1, Service: 0.2}, nil
	case "ring":
		return &Ring{MeanGap: 1}, nil
	case "burst":
		return &Burst{MeanQuiet: 4, BurstLen: 4}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

// Names lists the registered environments.
func Names() []string {
	return []string{"random", "groups", "client-server", "ring", "burst"}
}
