package workload

import (
	"testing"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/sim"
)

func run(t *testing.T, w sim.Workload, seed int64) *sim.Result {
	t.Helper()
	cfg := sim.DefaultConfig(core.KindBHMR, seed)
	cfg.N = 6
	cfg.Duration = 150
	res, err := sim.Run(cfg, w)
	if err != nil {
		t.Fatalf("run %s: %v", w.Name(), err)
	}
	return res
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, w.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName accepted an unknown environment")
	}
}

func TestEveryEnvironmentGeneratesTraffic(t *testing.T) {
	for i, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			res := run(t, w, int64(100+i))
			if len(res.Pattern.Messages) < 20 {
				t.Errorf("environment %s produced only %d messages", name, len(res.Pattern.Messages))
			}
			if res.Stats.Basic == 0 {
				t.Errorf("environment %s produced no basic checkpoints", name)
			}
		})
	}
}

func TestRandomSendsToEveryoneButSelf(t *testing.T) {
	res := run(t, &Random{MeanGap: 0.5}, 17)
	seen := make(map[[2]int]bool)
	for _, m := range res.Pattern.Messages {
		if m.From == m.To {
			t.Fatalf("self-send %v", m)
		}
		seen[[2]int{int(m.From), int(m.To)}] = true
	}
	// With 6 processes and hundreds of messages, every ordered pair should
	// appear.
	if len(seen) != 6*5 {
		t.Errorf("saw %d ordered pairs, want 30", len(seen))
	}
}

func TestRingOnlySendsToSuccessor(t *testing.T) {
	res := run(t, &Ring{MeanGap: 0.5}, 21)
	for _, m := range res.Pattern.Messages {
		if int(m.To) != (int(m.From)+1)%res.Pattern.N {
			t.Fatalf("ring message %v not to successor", m)
		}
	}
}

func TestClientServerShape(t *testing.T) {
	res := run(t, &ClientServer{Forward: 0.5, Think: 1, Service: 0.2}, 23)
	sawForward := false
	for _, m := range res.Pattern.Messages {
		d := int(m.To) - int(m.From)
		if d != 1 && d != -1 {
			t.Fatalf("client/server message %v skips the chain", m)
		}
		if int(m.From) >= 1 && d == 1 {
			sawForward = true
		}
	}
	if !sawForward {
		t.Error("no request was ever forwarded up the chain")
	}
}

func TestBurstSendsInBursts(t *testing.T) {
	res := run(t, &Burst{MeanQuiet: 3, BurstLen: 4}, 29)
	// Bursts send BurstLen messages back to back, so per-process message
	// counts are multiples of the burst length.
	counts := make([]int, res.Pattern.N)
	for _, m := range res.Pattern.Messages {
		counts[m.From]++
	}
	for i, c := range counts {
		if c%4 != 0 {
			t.Errorf("process %d sent %d messages, not a multiple of the burst length", i, c)
		}
	}
}

func TestGroupPeers(t *testing.T) {
	peers := groupPeers(9, 3, 1)
	for i, ps := range peers {
		if len(ps) == 0 {
			t.Fatalf("process %d has no group peers", i)
		}
		for _, p := range ps {
			if p == i {
				t.Fatalf("process %d lists itself as peer", i)
			}
			found := false
			for _, q := range peers[p] {
				if q == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("peer relation not symmetric between %d and %d", i, p)
			}
		}
	}
	// Groups of 3 overlapping by 1 over 9 processes: each member of a
	// group interior sees at most 4 distinct peers.
	for i, ps := range peers {
		if len(ps) > 4 {
			t.Errorf("process %d has %d peers, want <= 4", i, len(ps))
		}
	}
}

func TestGroupPeersDegenerateParameters(t *testing.T) {
	// Clamped parameters must not panic or produce self-peers.
	for _, args := range [][3]int{{5, 0, 0}, {5, 2, 5}, {5, 3, -2}, {4, 9, 1}} {
		peers := groupPeers(args[0], args[1], args[2])
		for i, ps := range peers {
			for _, p := range ps {
				if p == i {
					t.Fatalf("groupPeers%v: process %d lists itself", args, i)
				}
				if p < 0 || p >= args[0] {
					t.Fatalf("groupPeers%v: peer %d out of range", args, p)
				}
			}
		}
	}
}

func TestGroupsBiasKeepsTrafficLocal(t *testing.T) {
	w := &Groups{GroupSize: 3, Overlap: 1, IntraBias: 0.95, MeanGap: 0.5}
	res := run(t, w, 31)
	local, total := 0, 0
	peers := groupPeers(res.Pattern.N, 3, 1)
	for _, m := range res.Pattern.Messages {
		total++
		for _, p := range peers[m.From] {
			if p == int(m.To) {
				local++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no traffic")
	}
	if frac := float64(local) / float64(total); frac < 0.8 {
		t.Errorf("only %.2f of traffic stayed in groups, want >= 0.8", frac)
	}
}
