package workload_test

// The soundness suite: every protocol that claims the RDT property must
// produce, in every communication environment, traces the offline oracle
// certifies — no untrackable R-path, dependency vectors identical to the
// offline ones, Lemma 4.1 satisfied, and (Corollary 4.5) each checkpoint's
// recorded vector equal to the brute-force minimum consistent global
// checkpoint containing it. The uncoordinated baseline must, in contrast,
// exhibit RDT violations.

import (
	"fmt"
	"testing"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/sim"
	"github.com/rdt-go/rdt/internal/workload"
)

func soundnessConfig(k core.Kind, seed int64) sim.Config {
	cfg := sim.DefaultConfig(k, seed)
	cfg.N = 5
	cfg.Duration = 80
	cfg.BasicMean = 6
	return cfg
}

func mustRun(t *testing.T, cfg sim.Config, name string) *sim.Result {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	res, err := sim.Run(cfg, w)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestRDTProtocolsAreSoundInAllEnvironments(t *testing.T) {
	for _, kind := range core.RDTKinds() {
		for _, env := range workload.Names() {
			for seed := int64(1); seed <= 2; seed++ {
				name := fmt.Sprintf("%v/%s/seed%d", kind, env, seed)
				t.Run(name, func(t *testing.T) {
					res := mustRun(t, soundnessConfig(kind, seed), env)
					rep, err := rgraph.CheckRDT(res.Pattern, 4)
					if err != nil {
						t.Fatalf("check: %v", err)
					}
					if !rep.RDT {
						t.Fatalf("RDT violated: %v", rep.Violations)
					}
					if err := rgraph.VerifyRecordedTDVs(res.Pattern); err != nil {
						t.Fatalf("recorded TDVs wrong: %v", err)
					}
				})
			}
		}
	}
}

func TestLemma41HoldsForBHMRFamily(t *testing.T) {
	for _, kind := range []core.Kind{core.KindBHMR, core.KindBHMRNoSimple, core.KindBHMRCausalOnly} {
		for _, env := range []string{"random", "client-server"} {
			t.Run(fmt.Sprintf("%v/%s", kind, env), func(t *testing.T) {
				res := mustRun(t, soundnessConfig(kind, 3), env)
				if err := rgraph.CheckLemma41(res.Pattern); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCorollary45 validates the headline extra feature of the protocol:
// the vector recorded with every checkpoint of a BHMR run is exactly the
// minimum consistent global checkpoint containing that checkpoint.
func TestCorollary45(t *testing.T) {
	for _, env := range workload.Names() {
		t.Run(env, func(t *testing.T) {
			res := mustRun(t, soundnessConfig(core.KindBHMR, 5), env)
			p := res.Pattern
			checked := 0
			for i := 0; i < p.N; i++ {
				for x := range p.Checkpoints[i] {
					ck := &p.Checkpoints[i][x]
					if ck.TDV == nil {
						continue
					}
					id := ck.ID()
					min, err := rgraph.MinConsistentContaining(p, id)
					if err != nil {
						t.Fatalf("min containing %v: %v", id, err)
					}
					if !min.Equal(model.GlobalCheckpoint(ck.TDV)) {
						t.Fatalf("checkpoint %v: TDV %v != min consistent global %v", id, ck.TDV, min)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no annotated checkpoints to check")
			}
		})
	}
}

// TestMinimumIsConsistentForAllRDTProtocols: under any RDT protocol the
// recorded vector must at least be *a* consistent global checkpoint
// containing the checkpoint (Corollary 4.5 holds for the whole family since
// they all track dependencies the same way).
func TestMinimumIsConsistentForAllRDTProtocols(t *testing.T) {
	for _, kind := range core.RDTKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			res := mustRun(t, soundnessConfig(kind, 7), "random")
			p := res.Pattern
			for i := 0; i < p.N; i++ {
				for x := range p.Checkpoints[i] {
					ck := &p.Checkpoints[i][x]
					if ck.TDV == nil {
						continue
					}
					ok, err := rgraph.IsConsistent(p, model.GlobalCheckpoint(ck.TDV))
					if err != nil {
						t.Fatalf("consistency of %v: %v", ck.ID(), err)
					}
					if !ok {
						t.Fatalf("TDV of %v is not a consistent global checkpoint", ck.ID())
					}
					if ck.TDV[i] != x {
						t.Fatalf("TDV of %v has self entry %d", ck.ID(), ck.TDV[i])
					}
				}
			}
		})
	}
}

func TestUncoordinatedCheckpointingViolatesRDT(t *testing.T) {
	violated := false
	for seed := int64(1); seed <= 10 && !violated; seed++ {
		res := mustRun(t, soundnessConfig(core.KindNone, seed), "random")
		rep, err := rgraph.CheckRDT(res.Pattern, 1)
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		if !rep.RDT {
			violated = true
		}
	}
	if !violated {
		t.Error("uncoordinated runs never violated RDT across 10 seeds; the oracle or the workloads are too tame")
	}
}

// TestPredicateHierarchyLive verifies, on every arrival of a live BHMR
// simulation, the implications the comparison of Section 5.2 rests on:
// C1 ∨ C2 ⇒ C_FDAS ⇒ (C_FDI ∧ C_NRAS) and C_NRAS ⇒ C_CBR, plus C2 ⇒ C2'.
func TestPredicateHierarchyLive(t *testing.T) {
	type evaluator interface {
		Evaluate(core.Piggyback) core.Predicates
	}
	for _, env := range workload.Names() {
		t.Run(env, func(t *testing.T) {
			arrivals := 0
			cfg := soundnessConfig(core.KindBHMR, 11)
			cfg.Monitor = func(inst core.Instance, _ int, pb core.Piggyback) {
				ev, ok := inst.(evaluator)
				if !ok {
					t.Fatal("BHMR instance does not expose Evaluate")
				}
				pred := ev.Evaluate(pb)
				arrivals++
				if (pred.C1 || pred.C2) && !pred.FDAS {
					t.Errorf("C1∨C2 held without C_FDAS: %+v", pred)
				}
				if pred.C2 && !pred.C2Prime {
					t.Errorf("C2 held without C2': %+v", pred)
				}
				if pred.FDAS && (!pred.FDI || !pred.NRAS) {
					t.Errorf("C_FDAS held without C_FDI/C_NRAS: %+v", pred)
				}
				if pred.NRAS && !pred.CBR {
					t.Errorf("C_NRAS held without C_CBR: %+v", pred)
				}
			}
			mustRun(t, cfg, env)
			if arrivals == 0 {
				t.Fatal("monitor never ran")
			}
		})
	}
}

// TestForcedCheckpointOrdering verifies the evaluation's headline on
// averages over seeds: the paper's protocol forces fewer checkpoints than
// FDAS, and FDAS fewer than the cruder protocols.
func TestForcedCheckpointOrdering(t *testing.T) {
	for _, env := range []string{"random", "groups", "client-server"} {
		t.Run(env, func(t *testing.T) {
			mean := func(kind core.Kind) float64 {
				total := 0
				for seed := int64(1); seed <= 4; seed++ {
					cfg := soundnessConfig(kind, seed)
					cfg.Duration = 150
					res := mustRun(t, cfg, env)
					total += res.Stats.Forced
				}
				return float64(total) / 4
			}
			bhmr := mean(core.KindBHMR)
			fdas := mean(core.KindFDAS)
			nras := mean(core.KindNRAS)
			if bhmr > fdas {
				t.Errorf("BHMR forced %.1f > FDAS %.1f", bhmr, fdas)
			}
			if fdas > nras {
				t.Errorf("FDAS forced %.1f > NRAS %.1f", fdas, nras)
			}
		})
	}
}

// TestBCSIsZCycleFreeButNotRDT pins down the guarantee spectrum: the
// index-based BCS protocol leaves no useless checkpoint (every checkpoint
// can join a consistent global checkpoint) in any environment, yet its
// runs are not generally RDT — the reason the paper's stronger tracking
// exists.
func TestBCSIsZCycleFreeButNotRDT(t *testing.T) {
	violatedRDT := false
	for _, env := range []string{"random", "groups", "client-server"} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := soundnessConfig(core.KindBCS, seed)
			cfg.Duration = 50 // keep the O(M^2) chain closure affordable
			res := mustRun(t, cfg, env)
			chains, err := rgraph.NewChains(res.Pattern)
			if err != nil {
				t.Fatalf("chains: %v", err)
			}
			p := res.Pattern
			for i := 0; i < p.N; i++ {
				for x := range p.Checkpoints[i] {
					id := model.CkptID{Proc: model.ProcID(i), Index: x}
					if chains.Useless(id) {
						t.Fatalf("%s/seed%d: BCS produced useless checkpoint %v", env, seed, id)
					}
				}
			}
			rep, err := rgraph.CheckRDT(p, 1)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !rep.RDT {
				violatedRDT = true
			}
		}
	}
	if !violatedRDT {
		t.Error("BCS never violated RDT across the grid; the guarantee separation is not exercised")
	}
}

// TestNoneProducesUselessCheckpoints is the complement: without any
// coordination, useless checkpoints (Z-cycles) do appear.
func TestNoneProducesUselessCheckpoints(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 8 && !found; seed++ {
		cfg := soundnessConfig(core.KindNone, seed)
		cfg.Duration = 50
		res := mustRun(t, cfg, "random")
		chains, err := rgraph.NewChains(res.Pattern)
		if err != nil {
			t.Fatalf("chains: %v", err)
		}
		p := res.Pattern
		for i := 0; i < p.N && !found; i++ {
			for x := range p.Checkpoints[i] {
				if chains.Useless(model.CkptID{Proc: model.ProcID(i), Index: x}) {
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Error("no uncoordinated run produced a useless checkpoint across 8 seeds")
	}
}
