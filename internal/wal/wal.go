// Package wal implements the per-session append-only write-ahead log
// of the checking service: length-prefixed, CRC32C-checksummed records
// fsync'd on append, with a replay scanner that stops at — and a
// truncator that removes — any torn or corrupt tail.
//
// The frame of one record is
//
//	4 bytes  payload length, little endian
//	4 bytes  CRC32C (Castagnoli) of the payload
//	n bytes  payload
//
// Payloads are opaque to this package; the service encodes event
// batches and seal markers into them. A record is committed once
// Append and Sync have both returned: the bytes are then on the
// medium, and a later ScanFrom is guaranteed to return the record. A
// crash between Append and Sync may leave the frame complete, partial,
// or absent — all three are valid outcomes the scanner resolves by
// returning the longest valid prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/rdt-go/rdt/internal/storage"
)

const (
	headerSize = 8
	// MaxRecord bounds one record payload. A length field beyond it is
	// treated as corruption, so a flipped bit in the length cannot make
	// the scanner attempt a multi-gigabyte allocation.
	MaxRecord = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrRecordSize is returned by Append for empty or oversized payloads.
var ErrRecordSize = errors.New("wal: record payload size out of range")

// Log is an open write-ahead log positioned for appending. A Log is not
// safe for concurrent use; the service's per-session worker is its only
// writer.
type Log struct {
	path string
	f    *os.File
	off  int64
	buf  []byte
}

// OpenAppend opens the log at path for appending, creating it (and
// syncing the parent directory so the creation is durable) if it does
// not exist. Callers recovering an existing log must ScanFrom (and
// Truncate a torn tail) first, so the append position starts on a
// record boundary.
func OpenAppend(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	if st.Size() == 0 {
		if err := storage.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	return &Log{path: path, f: f, off: st.Size()}, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Offset returns the current end of the log in bytes — the offset the
// next record's frame will start at, and the offset a snapshot taken
// now should record as covered.
func (l *Log) Offset() int64 { return l.off }

// Append writes one record frame. It does not sync; call Sync before
// treating the record as committed. On a write error the log's offset
// still advances by the bytes written, so the caller knows the tail may
// be torn — the expected reaction is to stop writing (degrade) and let
// the next recovery truncate.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrRecordSize, len(payload))
	}
	l.buf = l.buf[:0]
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(len(payload)))
	l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.Checksum(payload, crcTable))
	l.buf = append(l.buf, payload...)
	n, err := l.f.Write(l.buf)
	l.off += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return nil
}

// Sync flushes appended records to the medium.
func (l *Log) Sync() error {
	if err := storage.SyncFile(l.f); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close closes the log file. Further Appends fail.
func (l *Log) Close() error { return l.f.Close() }

// ScanFrom replays the log from byte offset from, invoking fn with each
// record payload (the slice is reused between calls; fn must not retain
// it). It returns the offset just past the last valid record, whether
// the scan stopped early because the tail is torn or corrupt (short
// frame, absurd length, CRC mismatch), and any error from fn or the
// medium. An fn error aborts the scan with end just past the offending
// record and torn false.
//
// A missing file is an empty log: (0, from > 0, nil) — torn only if the
// caller expected records before from that do not exist.
func ScanFrom(path string, from int64, fn func(payload []byte) error) (end int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, from > 0, nil
		}
		return 0, false, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, false, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	size := st.Size()
	if from > size {
		// The log claims fewer bytes than the snapshot said it covered;
		// nothing sound to replay.
		return from, true, nil
	}
	off := from
	var header [headerSize]byte
	var payload []byte
	for off < size {
		if size-off < headerSize {
			return off, true, nil
		}
		if _, err := f.ReadAt(header[:], off); err != nil {
			return off, true, nil
		}
		length := int64(binary.LittleEndian.Uint32(header[:4]))
		want := binary.LittleEndian.Uint32(header[4:])
		if length == 0 || length > MaxRecord || off+headerSize+length > size {
			return off, true, nil
		}
		if int64(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := f.ReadAt(payload, off+headerSize); err != nil {
			return off, true, nil
		}
		if crc32.Checksum(payload, crcTable) != want {
			return off, true, nil
		}
		off += headerSize + length
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, false, err
			}
		}
	}
	return off, false, nil
}

// Truncate cuts the log at end — the valid-prefix boundary ScanFrom
// reported — and syncs the file and its directory, so the removal of
// the torn tail is itself durable. Truncating at or beyond the current
// size is a no-op (truncation must never extend a log).
func Truncate(path string, end int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) && end == 0 {
			return nil
		}
		return fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if st.Size() <= end {
		return nil
	}
	if err := f.Truncate(end); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	if err := storage.SyncFile(f); err != nil {
		return fmt.Errorf("wal: sync %s: %w", path, err)
	}
	return storage.SyncDir(filepath.Dir(path))
}
