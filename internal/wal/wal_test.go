package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, l *Log, payloads ...[]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func scanAll(t *testing.T, path string, from int64) (recs [][]byte, end int64, torn bool) {
	t.Helper()
	end, torn, err := ScanFrom(path, from, func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return recs, end, torn
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenAppend(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := [][]byte{[]byte("one"), []byte("two two"), bytes.Repeat([]byte{0xAB}, 1000)}
	appendAll(t, l, want...)
	off := l.Offset()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs, end, torn := scanAll(t, path, 0)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if end != off {
		t.Fatalf("scan end %d, want append offset %d", end, off)
	}
	if len(recs) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}

	// Reopen resumes at the end, and a scan from a mid-log offset sees
	// only the suffix.
	l2, err := OpenAppend(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Offset() != off {
		t.Fatalf("reopened offset %d, want %d", l2.Offset(), off)
	}
	appendAll(t, l2, []byte("four"))
	l2.Close()
	recs, _, torn = scanAll(t, path, off)
	if torn || len(recs) != 1 || string(recs[0]) != "four" {
		t.Fatalf("suffix scan = %q (torn=%v), want [four]", recs, torn)
	}
}

func TestAppendRejectsBadSizes(t *testing.T) {
	l, err := OpenAppend(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	if err := l.Append(nil); !errors.Is(err, ErrRecordSize) {
		t.Fatalf("empty append: %v, want ErrRecordSize", err)
	}
	if err := l.Append(make([]byte, MaxRecord+1)); !errors.Is(err, ErrRecordSize) {
		t.Fatalf("oversized append: %v, want ErrRecordSize", err)
	}
	if l.Offset() != 0 {
		t.Fatalf("offset moved to %d on rejected appends", l.Offset())
	}
}

// TestTornTailTruncation: every way a tail can be damaged — a partial
// header, a partial payload, a flipped payload bit, a flipped length —
// truncates to the last valid prefix; records before it survive.
func TestTornTailTruncation(t *testing.T) {
	mangle := []struct {
		name string
		do   func(t *testing.T, path string, goodEnd, size int64)
	}{
		{"partial header", func(t *testing.T, path string, goodEnd, size int64) {
			truncateFile(t, path, goodEnd+3)
		}},
		{"partial payload", func(t *testing.T, path string, goodEnd, size int64) {
			truncateFile(t, path, size-2)
		}},
		{"payload bit flip", func(t *testing.T, path string, goodEnd, size int64) {
			flipByte(t, path, size-1)
		}},
		{"length bit flip", func(t *testing.T, path string, goodEnd, size int64) {
			flipByte(t, path, goodEnd)
		}},
	}
	for _, tc := range mangle {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			l, err := OpenAppend(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			appendAll(t, l, []byte("keep-1"), []byte("keep-2"))
			goodEnd := l.Offset()
			appendAll(t, l, []byte("doomed"))
			size := l.Offset()
			l.Close()

			tc.do(t, path, goodEnd, size)
			recs, end, torn := scanAll(t, path, 0)
			if !torn {
				t.Fatal("damaged tail not reported torn")
			}
			if end != goodEnd {
				t.Fatalf("valid prefix ends at %d, want %d", end, goodEnd)
			}
			if len(recs) != 2 {
				t.Fatalf("scanned %d records, want 2", len(recs))
			}
			if err := Truncate(path, end); err != nil {
				t.Fatalf("truncate: %v", err)
			}
			recs, end2, torn := scanAll(t, path, 0)
			if torn || end2 != goodEnd || len(recs) != 2 {
				t.Fatalf("post-truncate scan: %d records end %d torn %v", len(recs), end2, torn)
			}
			// And the log accepts new records after the repair.
			l2, err := OpenAppend(path)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			appendAll(t, l2, []byte("after"))
			l2.Close()
			recs, _, torn = scanAll(t, path, 0)
			if torn || len(recs) != 3 || string(recs[2]) != "after" {
				t.Fatalf("post-repair append: %q torn %v", recs, torn)
			}
		})
	}
}

func TestScanCRCCoversPayload(t *testing.T) {
	// A hand-built frame with a wrong CRC is rejected even though the
	// length is plausible.
	path := filepath.Join(t.TempDir(), "wal.log")
	payload := []byte("payload")
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable)+1)
	frame = append(frame, payload...)
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	recs, end, torn := scanAll(t, path, 0)
	if !torn || end != 0 || len(recs) != 0 {
		t.Fatalf("bad-CRC frame scanned as %d records end %d torn %v", len(recs), end, torn)
	}
}

func TestScanMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.log")
	end, torn, err := ScanFrom(path, 0, nil)
	if err != nil || torn || end != 0 {
		t.Fatalf("missing log from 0: end %d torn %v err %v", end, torn, err)
	}
	end, torn, err = ScanFrom(path, 10, nil)
	if err != nil || !torn {
		t.Fatalf("missing log from 10: end %d torn %v err %v", end, torn, err)
	}
	if err := Truncate(path, 0); err != nil {
		t.Fatalf("truncate missing at 0: %v", err)
	}
}

func TestScanFnErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenAppend(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, l, []byte("a"), []byte("b"), []byte("c"))
	l.Close()
	calls := 0
	boom := errors.New("boom")
	_, torn, err := ScanFrom(path, 0, func([]byte) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || torn {
		t.Fatalf("fn error: err %v torn %v", err, torn)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2", calls)
	}
}

func TestTruncateNeverExtends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenAppend(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, l, []byte("x"))
	size := l.Offset()
	l.Close()
	if err := Truncate(path, size+100); err != nil {
		t.Fatalf("truncate beyond end: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Size() != size {
		t.Fatalf("truncate extended the log to %d, want %d", st.Size(), size)
	}
}

func truncateFile(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatalf("truncate %s: %v", path, err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if off >= int64(len(data)) {
		t.Fatalf("flip offset %d beyond %d", off, len(data))
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("rewrite %s: %v", path, err)
	}
}

// TestManyRecordsOffsets: offsets reported by the log line up with the
// scanner's frame boundaries for a few hundred records of mixed sizes.
func TestManyRecordsOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenAppend(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var ends []int64
	for i := 0; i < 300; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte("x"), i%17)))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		ends = append(ends, l.Offset())
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	l.Close()
	for _, from := range []int64{0, ends[99], ends[298]} {
		want := 0
		for _, e := range ends {
			if e > from {
				want++
			}
		}
		recs, end, torn := scanAll(t, path, from)
		if torn || len(recs) != want || end != ends[len(ends)-1] {
			t.Fatalf("scan from %d: %d records (want %d) end %d torn %v", from, len(recs), want, end, torn)
		}
	}
}
