package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws raw bytes at the replay scanner: whatever the
// medium hands back after a crash, the scanner must not panic, must
// stop inside the file, and — after truncating at the reported end —
// must reproduce exactly the records of the first scan (replay is a
// fixpoint on the valid prefix).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0xAD, 0x82, 0x90, 0x90, 'x'})
	// A genuine two-record log, then damaged variants of it.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.log")
	l, err := OpenAppend(seedPath)
	if err != nil {
		f.Fatalf("open seed: %v", err)
	}
	if err := l.Append([]byte("hello")); err != nil {
		f.Fatalf("append: %v", err)
	}
	if err := l.Append(bytes.Repeat([]byte{7}, 64)); err != nil {
		f.Fatalf("append: %v", err)
	}
	l.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatalf("read seed: %v", err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	mangled := append([]byte(nil), seed...)
	mangled[6] ^= 0x40
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		var first [][]byte
		end, torn, err := ScanFrom(path, 0, func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("scan error on raw bytes: %v", err)
		}
		if end < 0 || end > int64(len(data)) {
			t.Fatalf("end %d outside [0,%d]", end, len(data))
		}
		if !torn && end != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d", end, len(data))
		}
		if err := Truncate(path, end); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		var second [][]byte
		end2, torn2, err := ScanFrom(path, 0, func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil || torn2 || end2 != end {
			t.Fatalf("rescan after truncate: end %d (want %d) torn %v err %v", end2, end, torn2, err)
		}
		if len(first) != len(second) {
			t.Fatalf("replay changed record count: %d then %d", len(first), len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d changed across truncation", i)
			}
		}
	})
}
