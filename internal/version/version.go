// Package version carries the build identity of the rdt binaries. The
// variables are overridden at link time by the Makefile:
//
//	go build -ldflags "-X .../internal/version.Version=v1.2.3 \
//	                   -X .../internal/version.Commit=abc1234"
//
// A plain `go build` leaves the development defaults in place.
package version

var (
	// Version is the release tag, or "dev" for unstamped builds.
	Version = "dev"
	// Commit is the short git revision the binary was built from.
	Commit = "unknown"
)

// String renders the one-line version banner the -version flags print.
func String() string {
	return Version + " (" + Commit + ")"
}
