package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/sim"
	"github.com/rdt-go/rdt/internal/workload"
)

// cell identifies one simulation of the experiment grid: an environment,
// a protocol, a basic-checkpoint mean and a replication seed, plus the
// optional overrides individual experiments use. Cells are self-contained
// so the grid can hand them to any worker.
type cell struct {
	env  string
	kind core.Kind
	mean float64
	seed int64

	// duration overrides cfg.Duration when positive (Guarantees runs on a
	// reduced horizon).
	duration float64
	// delayMax, with delayMin, overrides the channel-delay window when
	// positive (the asynchrony ablation).
	delayMin, delayMax float64
	// monitor is attached to the simulation when non-nil. It is invoked
	// only from the cell's own simulation, so it may mutate cell-local
	// state without synchronization.
	monitor func(inst core.Instance, from int, pb core.Piggyback)
}

// runCell executes one simulation of the grid.
func runCell(cfg Config, c cell) (*sim.Result, error) {
	w, err := workload.ByName(c.env)
	if err != nil {
		return nil, err
	}
	sc := sim.DefaultConfig(c.kind, c.seed)
	sc.N = cfg.N
	sc.Duration = cfg.Duration
	if c.duration > 0 {
		sc.Duration = c.duration
	}
	sc.BasicMean = c.mean
	if c.delayMax > 0 {
		sc.DelayMin = c.delayMin
		sc.DelayMax = c.delayMax
	}
	sc.Monitor = c.monitor
	sc.Obs = cfg.Obs
	return sim.Run(sc, w)
}

// runGrid evaluates fn for every index 0..n-1 across a pool of cfg.Jobs
// worker goroutines and returns the results in index order.
//
// Determinism contract: every cell derives its seed from its own indices,
// each result is written into its pre-assigned slot, and callers aggregate
// the returned slice in a fixed order — so the output is byte-identical
// whatever the worker count, including the sequential Jobs <= 1 fast path.
//
// The grid-progress counter rdt_experiment_runs_total is incremented once
// per completed cell (the counter is atomic, so concurrent workers cannot
// lose updates). On error the first failure in index order is returned and
// workers stop claiming new cells.
func runGrid[T any](cfg Config, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	runs := cfg.Obs.Counter("rdt_experiment_runs_total")

	workers := cfg.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
			runs.Inc()
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
				runs.Inc()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// analyzers pools rgraph analyzers so grid cells that run offline checks
// reuse replay scratch across cells without tying cells to workers.
var analyzers = sync.Pool{New: func() any { return rgraph.NewAnalyzer() }}
