package experiments

import (
	"strings"
	"testing"

	"github.com/rdt-go/rdt/internal/core"
)

func tiny() Config {
	return Config{
		N:          4,
		Duration:   60,
		Seeds:      2,
		BasicMeans: []float64{4, 10},
		Protocols:  []core.Kind{core.KindBHMR, core.KindFDAS},
	}
}

func TestFigureRProducesAllLines(t *testing.T) {
	cfg := tiny()
	for _, env := range Environments() {
		t.Run(env, func(t *testing.T) {
			s, err := FigureR(cfg, env)
			if err != nil {
				t.Fatalf("figure: %v", err)
			}
			if len(s.X) != len(cfg.BasicMeans) {
				t.Errorf("x axis = %v", s.X)
			}
			for _, kind := range cfg.Protocols {
				ys, ok := s.Lines[kind.String()]
				if !ok || len(ys) != len(cfg.BasicMeans) {
					t.Errorf("line %v incomplete: %v", kind, ys)
				}
				for _, y := range ys {
					if y < 0 {
						t.Errorf("negative R for %v: %v", kind, y)
					}
				}
			}
			if !strings.Contains(s.Table().Render(), env) {
				t.Error("table misses the environment name")
			}
		})
	}
}

func TestFigureRRejectsUnknownEnvironment(t *testing.T) {
	if _, err := FigureR(tiny(), "mars"); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestReductionVsFDAS(t *testing.T) {
	tab, err := ReductionVsFDAS(tiny())
	if err != nil {
		t.Fatalf("reduction: %v", err)
	}
	if len(tab.Rows) != len(Environments()) {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	out := tab.Render()
	if !strings.Contains(out, "bhmr") || !strings.Contains(out, "random") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestPiggybackSizesGrowWithN(t *testing.T) {
	tab, err := PiggybackSizes([]int{4, 16})
	if err != nil {
		t.Fatalf("piggyback: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The BHMR column (last) must grow superlinearly (matrix) while the
	// CBR column (second) stays zero.
	if tab.Rows[0][1] != "0" || tab.Rows[1][1] != "0" {
		t.Errorf("CBR column should be zero: %v", tab.Rows)
	}
	if tab.Rows[0][4] >= tab.Rows[1][4] && len(tab.Rows[0][4]) >= len(tab.Rows[1][4]) {
		t.Errorf("BHMR bytes did not grow: %v", tab.Rows)
	}
}

func TestDominoShowsCoordinationValue(t *testing.T) {
	cfg := tiny()
	cfg.Seeds = 3
	cfg.Duration = 100
	tab, err := Domino(cfg)
	if err != nil {
		t.Fatalf("domino: %v", err)
	}
	if len(tab.Rows) != len(Environments()) {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestAblation(t *testing.T) {
	tab, err := Ablation(tiny())
	if err != nil {
		t.Fatalf("ablation: %v", err)
	}
	if len(tab.Rows) != len(Environments()) || len(tab.Header) != 4 {
		t.Errorf("table shape wrong: %+v", tab)
	}
}

func TestMinGlobalAgreementIsTotal(t *testing.T) {
	tab, err := MinGlobalAgreement(tiny())
	if err != nil {
		t.Fatalf("agreement: %v", err)
	}
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Errorf("environment %s: %s checkpoints but only %s agree", row[0], row[1], row[2])
		}
		if row[1] == "0" {
			t.Errorf("environment %s checked no checkpoints", row[0])
		}
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d, q := Default(), Quick()
	if d.N < q.N || d.Duration <= q.Duration || d.Seeds < q.Seeds {
		t.Error("default config should dominate quick config")
	}
	if len(d.Protocols) < len(q.Protocols) {
		t.Error("default config drops protocols")
	}
}

func TestDelaySensitivity(t *testing.T) {
	s, err := DelaySensitivity(tiny())
	if err != nil {
		t.Fatalf("delay sensitivity: %v", err)
	}
	for _, kind := range []core.Kind{core.KindBHMR, core.KindFDAS} {
		ys := s.Lines[kind.String()]
		if len(ys) != len(s.X) {
			t.Fatalf("line %v incomplete: %v", kind, ys)
		}
	}
	// BHMR never exceeds FDAS at any delay.
	for i := range s.X {
		if s.Lines["bhmr"][i] > s.Lines["fdas"][i]+1e-9 {
			t.Errorf("delay %v: bhmr %v > fdas %v", s.X[i], s.Lines["bhmr"][i], s.Lines["fdas"][i])
		}
	}
}

func TestConditionAttribution(t *testing.T) {
	tab, err := ConditionAttribution(tiny())
	if err != nil {
		t.Fatalf("attribution: %v", err)
	}
	if len(tab.Rows) != len(Environments()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] == "0" {
			t.Errorf("environment %s saw no arrivals", row[0])
		}
	}
}

func TestGuarantees(t *testing.T) {
	tab, err := Guarantees(tiny())
	if err != nil {
		t.Fatalf("guarantees: %v", err)
	}
	byProto := make(map[string][]string, len(tab.Rows))
	for _, row := range tab.Rows {
		byProto[row[0]] = row
	}
	if byProto["bhmr"][2] != "true" || byProto["fdas"][2] != "true" {
		t.Errorf("RDT protocols misreported: %v", tab.Rows)
	}
	if byProto["bhmr"][3] != "100" || byProto["fdas"][3] != "100" {
		t.Errorf("RDT protocols should be 100%% trackable: %v", tab.Rows)
	}
	if byProto["bcs"][4] != "0" || byProto["bhmr"][4] != "0" {
		t.Errorf("useless checkpoints under ZCF/RDT protocols: %v", tab.Rows)
	}
}
