// Package experiments regenerates the evaluation of the paper: the
// forced-checkpoint overhead figures for the three communication
// environments (random, overlapping groups, client/server), the headline
// reduction-vs-FDAS table, the piggyback-size comparison of Section 5.2,
// and the extension experiments (domino effect, protocol ablation,
// minimum-consistent-global-checkpoint agreement). Both the
// cmd/rdtexperiments CLI and the repository's benchmarks drive this
// package, so figures in EXPERIMENTS.md and benchmark output come from
// the same code.
//
// Every experiment fans its (environment, protocol, mean, seed) grid
// across the worker pool of runGrid. Cell seeds depend only on the cell's
// own coordinates and aggregation happens in a fixed order, so results
// are byte-identical for every Config.Jobs value.
package experiments

import (
	"fmt"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/recovery"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/stats"
	"github.com/rdt-go/rdt/internal/storage"
)

// Config scales an experiment run.
type Config struct {
	// N is the number of processes.
	N int
	// Duration is the simulated horizon per run.
	Duration float64
	// Seeds is the number of replications averaged per data point.
	Seeds int
	// BasicMeans is the swept x-axis: mean interval between basic
	// checkpoints, in units of the mean message gap.
	BasicMeans []float64
	// Protocols are the lines of the figures.
	Protocols []core.Kind

	// Jobs is the number of worker goroutines the grid of simulations is
	// fanned across; 0 or negative means runtime.GOMAXPROCS(0). Output is
	// byte-identical for every value (see runGrid).
	Jobs int

	// Obs, if non-nil, receives the metrics of every simulation of the
	// grid (protocol-labeled) plus a grid-progress counter
	// rdt_experiment_runs_total, so a paper-scale regeneration can be
	// watched live over /metrics.
	Obs *obs.Registry
}

// Default returns the paper-scale configuration used by the CLI.
func Default() Config {
	return Config{
		N:          8,
		Duration:   1500,
		Seeds:      5,
		BasicMeans: []float64{2, 4, 8, 16, 32},
		Protocols: []core.Kind{
			core.KindBHMR, core.KindBHMRNoSimple, core.KindBHMRCausalOnly,
			core.KindFDAS, core.KindFDI, core.KindNRAS, core.KindCBR, core.KindCAS,
		},
	}
}

// Quick returns a reduced configuration for tests and benchmarks.
func Quick() Config {
	return Config{
		N:          6,
		Duration:   250,
		Seeds:      3,
		BasicMeans: []float64{4, 12},
		Protocols: []core.Kind{
			core.KindBHMR, core.KindBHMRNoSimple, core.KindBHMRCausalOnly,
			core.KindFDAS, core.KindNRAS, core.KindCAS,
		},
	}
}

// Environments lists the evaluation's communication environments, in the
// paper's order.
func Environments() []string { return []string{"random", "groups", "client-server"} }

// mid returns the midpoint of the swept basic-checkpoint means, the
// x-value the summary tables are evaluated at.
func (cfg Config) mid() float64 { return cfg.BasicMeans[len(cfg.BasicMeans)/2] }

// mean averages one aggregation group of grid results.
func mean(vals []float64) float64 { return stats.Sample(vals).Mean() }

// FigureR reproduces one "R in <environment>" figure (Figures 7–9 of the
// companion text): forced checkpoints per basic checkpoint as a function
// of the basic-checkpoint interval, one line per protocol.
func FigureR(cfg Config, env string) (*stats.Series, error) {
	cells := make([]cell, 0, len(cfg.BasicMeans)*len(cfg.Protocols)*cfg.Seeds)
	for _, mean := range cfg.BasicMeans {
		for _, kind := range cfg.Protocols {
			for seed := 0; seed < cfg.Seeds; seed++ {
				cells = append(cells, cell{env: env, kind: kind, mean: mean, seed: int64(1000*seed + 7)})
			}
		}
	}
	vals, err := runGrid(cfg, len(cells), func(i int) (float64, error) {
		res, err := runCell(cfg, cells[i])
		if err != nil {
			return 0, err
		}
		return res.Stats.ForcedPerBasic(), nil
	})
	if err != nil {
		return nil, fmt.Errorf("figure %s: %w", env, err)
	}

	s := stats.NewSeries(
		fmt.Sprintf("R = forced/basic in the %s environment (n=%d, %d seeds)", env, cfg.N, cfg.Seeds),
		"basic-interval", "R")
	s.X = append(s.X, cfg.BasicMeans...)
	idx := 0
	for range cfg.BasicMeans {
		for _, kind := range cfg.Protocols {
			s.Add(kind.String(), mean(vals[idx:idx+cfg.Seeds]))
			idx += cfg.Seeds
		}
	}
	return s, nil
}

// ReductionVsFDAS reproduces the headline claim: the percentage of forced
// checkpoints the paper's protocol (and its variants) save with respect to
// FDAS, per environment. The paper reports the reduction is never below
// 10%.
func ReductionVsFDAS(cfg Config) (*stats.Table, error) {
	variants := []core.Kind{core.KindBHMR, core.KindBHMRNoSimple, core.KindBHMRCausalOnly}
	kinds := append([]core.Kind{core.KindFDAS}, variants...)
	cells := make([]cell, 0, len(Environments())*len(kinds)*cfg.Seeds)
	for _, env := range Environments() {
		for _, kind := range kinds {
			for seed := 0; seed < cfg.Seeds; seed++ {
				cells = append(cells, cell{env: env, kind: kind, mean: cfg.mid(), seed: int64(1000*seed + 7)})
			}
		}
	}
	vals, err := runGrid(cfg, len(cells), func(i int) (float64, error) {
		res, err := runCell(cfg, cells[i])
		if err != nil {
			return 0, err
		}
		return res.Stats.ForcedPerBasic(), nil
	})
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Forced-checkpoint reduction vs FDAS (%%), n=%d, %d seeds", cfg.N, cfg.Seeds),
		Header: append([]string{"environment", "fdas R"}, kindNames(variants)...),
	}
	idx := 0
	for _, env := range Environments() {
		fdas := mean(vals[idx : idx+cfg.Seeds])
		idx += cfg.Seeds
		row := []string{env, stats.Format(fdas)}
		for range variants {
			r := mean(vals[idx : idx+cfg.Seeds])
			idx += cfg.Seeds
			reduction := 0.0
			if fdas > 0 {
				reduction = 100 * (fdas - r) / fdas
			}
			row = append(row, stats.Format(reduction))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// PiggybackSizes reproduces the control-information cost discussion of
// Section 5.2: bytes piggybacked per message by each protocol, as the
// system grows.
func PiggybackSizes(ns []int) (*stats.Table, error) {
	kinds := []core.Kind{
		core.KindCBR, core.KindFDAS, core.KindBHMRCausalOnly, core.KindBHMR,
	}
	t := &stats.Table{
		Title:  "Piggybacked control information (bytes/message)",
		Header: append([]string{"n"}, kindNames(kinds)...),
	}
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for _, kind := range kinds {
			inst, err := core.New(kind, 0, n, nil)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", inst.WireSize()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Domino quantifies the motivation experiment: total checkpoint intervals
// lost when process 0 crashes at the end of the run, with and without
// communication-induced checkpointing.
func Domino(cfg Config) (*stats.Table, error) {
	kinds := []core.Kind{core.KindNone, core.KindBHMR, core.KindFDAS}
	cells := make([]cell, 0, len(Environments())*len(kinds)*cfg.Seeds)
	for _, env := range Environments() {
		for _, kind := range kinds {
			for seed := 0; seed < cfg.Seeds; seed++ {
				cells = append(cells, cell{env: env, kind: kind, mean: cfg.mid(), seed: int64(500*seed + 3)})
			}
		}
	}
	vals, err := runGrid(cfg, len(cells), func(i int) (float64, error) {
		res, err := runCell(cfg, cells[i])
		if err != nil {
			return 0, err
		}
		plan, err := crashPlan(res.Pattern)
		if err != nil {
			return 0, err
		}
		return float64(plan.TotalRollback()), nil
	})
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Total rollback depth after a crash of P0 (n=%d, %d seeds)", cfg.N, cfg.Seeds),
		Header: append([]string{"environment"}, kindNames(kinds)...),
	}
	idx := 0
	for _, env := range Environments() {
		row := []string{env}
		for range kinds {
			row = append(row, stats.Format(mean(vals[idx:idx+cfg.Seeds])))
			idx += cfg.Seeds
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Ablation compares the three members of the BHMR family, isolating the
// value of the simple vector (full vs variant A) and of the causal
// diagonal (variant A vs variant B), reported as forced checkpoints per
// message.
func Ablation(cfg Config) (*stats.Table, error) {
	kinds := []core.Kind{core.KindBHMR, core.KindBHMRNoSimple, core.KindBHMRCausalOnly}
	cells := make([]cell, 0, len(Environments())*len(kinds)*cfg.Seeds)
	for _, env := range Environments() {
		for _, kind := range kinds {
			for seed := 0; seed < cfg.Seeds; seed++ {
				cells = append(cells, cell{env: env, kind: kind, mean: cfg.mid(), seed: int64(300*seed + 11)})
			}
		}
	}
	vals, err := runGrid(cfg, len(cells), func(i int) (float64, error) {
		res, err := runCell(cfg, cells[i])
		if err != nil {
			return 0, err
		}
		return res.Stats.ForcedPerMessage(), nil
	})
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("BHMR family ablation: forced checkpoints per message (n=%d, %d seeds)", cfg.N, cfg.Seeds),
		Header: append([]string{"environment"}, kindNames(kinds)...),
	}
	idx := 0
	for _, env := range Environments() {
		row := []string{env}
		for range kinds {
			row = append(row, stats.Format(mean(vals[idx:idx+cfg.Seeds])))
			idx += cfg.Seeds
		}
		t.AddRow(row...)
	}
	return t, nil
}

// MinGlobalAgreement verifies Corollary 4.5 on fresh runs and reports the
// number of checkpoints whose on-the-fly annotation matches the
// brute-force minimum consistent global checkpoint (it must be all of
// them).
func MinGlobalAgreement(cfg Config) (*stats.Table, error) {
	type counts struct{ total, agree int }
	envs := Environments()
	vals, err := runGrid(cfg, len(envs), func(i int) (counts, error) {
		res, err := runCell(cfg, cell{env: envs[i], kind: core.KindBHMR, mean: cfg.mid(), seed: 77})
		if err != nil {
			return counts{}, err
		}
		total, agree, err := MinGlobalCheck(res.Pattern)
		return counts{total: total, agree: agree}, err
	})
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:  "Corollary 4.5: on-the-fly TDV vs brute-force minimum consistent global checkpoint",
		Header: []string{"environment", "checkpoints", "agreeing"},
	}
	for i, env := range envs {
		t.AddRow(env, fmt.Sprintf("%d", vals[i].total), fmt.Sprintf("%d", vals[i].agree))
	}
	return t, nil
}

// MinGlobalCheck counts the annotated checkpoints of a pattern and how
// many have a dependency vector equal to the brute-force minimum
// consistent global checkpoint containing them.
func MinGlobalCheck(p *model.Pattern) (total, agree int, err error) {
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			ck := &p.Checkpoints[i][x]
			if ck.TDV == nil {
				continue
			}
			total++
			min, err := rgraph.MinConsistentContaining(p, ck.ID())
			if err != nil {
				return total, agree, err
			}
			if min.Equal(model.GlobalCheckpoint(ck.TDV)) {
				agree++
			}
		}
	}
	return total, agree, nil
}

// crashPlan builds a recovery manager over the pattern's checkpoints and
// computes the recovery plan for a crash of process 0.
func crashPlan(p *model.Pattern) (*recovery.Plan, error) {
	store := storage.NewMemory()
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			ck := &p.Checkpoints[i][x]
			tdv := ck.TDV
			if tdv == nil {
				if ck.Kind == model.KindFinal {
					continue
				}
				tdv = make([]int, p.N)
			}
			if err := store.Put(storage.Checkpoint{Proc: i, Index: x, Kind: ck.Kind, TDV: tdv}); err != nil {
				return nil, err
			}
		}
	}
	mgr, err := recovery.NewManager(store, p.N)
	if err != nil {
		return nil, err
	}
	return mgr.AfterCrash(0)
}

func kindNames(kinds []core.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// DelaySensitivity is an extension experiment: channel asynchrony
// ablation. It measures how sensitive the forced-checkpoint ratio is to
// the transmission-delay spread (wider spreads reorder messages more),
// reporting R for the paper's protocol and FDAS in the random environment
// as the maximum delay grows (the mean send gap is 1).
func DelaySensitivity(cfg Config) (*stats.Series, error) {
	delays := []float64{0.2, 1, 3, 8}
	kinds := []core.Kind{core.KindBHMR, core.KindFDAS}
	cells := make([]cell, 0, len(delays)*len(kinds)*cfg.Seeds)
	for _, d := range delays {
		for _, kind := range kinds {
			for seed := 0; seed < cfg.Seeds; seed++ {
				cells = append(cells, cell{
					env: "random", kind: kind, mean: cfg.mid(), seed: int64(900*seed + 13),
					delayMin: 0.05, delayMax: d,
				})
			}
		}
	}
	vals, err := runGrid(cfg, len(cells), func(i int) (float64, error) {
		res, err := runCell(cfg, cells[i])
		if err != nil {
			return 0, err
		}
		return res.Stats.ForcedPerBasic(), nil
	})
	if err != nil {
		return nil, err
	}

	s := stats.NewSeries(
		fmt.Sprintf("Asynchrony ablation: R vs max channel delay (random, n=%d, %d seeds)", cfg.N, cfg.Seeds),
		"max-delay", "R")
	s.X = append(s.X, delays...)
	idx := 0
	for range delays {
		for _, kind := range kinds {
			s.Add(kind.String(), mean(vals[idx:idx+cfg.Seeds]))
			idx += cfg.Seeds
		}
	}
	return s, nil
}

// conditionEvaluator is implemented by the full BHMR instance.
type conditionEvaluator interface {
	Evaluate(core.Piggyback) core.Predicates
}

// ConditionAttribution is an extension experiment quantifying the paper's
// centerpiece: of the arrivals where the protocol forces a checkpoint, how
// many are due to C1 (a breakable non-causal chain without a visible
// sibling), how many to C2 (a non-simple causal chain closing on its own
// interval) — and how many arrivals FDAS would have broken although
// C1 ∨ C2 proves no checkpoint is needed (the "saved" column).
func ConditionAttribution(cfg Config) (*stats.Table, error) {
	type attribution struct{ arrivals, c1, c2, c2Only, saved int }
	envs := Environments()
	cells := make([]cell, 0, len(envs)*cfg.Seeds)
	for _, env := range envs {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cells = append(cells, cell{env: env, kind: core.KindBHMR, mean: cfg.mid(), seed: int64(700*seed + 29)})
		}
	}
	vals, err := runGrid(cfg, len(cells), func(i int) (attribution, error) {
		// The monitor mutates the cell-local counters; the simulation is
		// single-threaded, so no synchronization is needed.
		var att attribution
		c := cells[i]
		c.monitor = func(inst core.Instance, _ int, pb core.Piggyback) {
			ev, ok := inst.(conditionEvaluator)
			if !ok {
				return
			}
			pred := ev.Evaluate(pb)
			att.arrivals++
			if pred.C1 {
				att.c1++
			}
			if pred.C2 {
				att.c2++
			}
			if pred.C2 && !pred.C1 {
				att.c2Only++
			}
			if pred.FDAS && !pred.C1 && !pred.C2 {
				att.saved++
			}
		}
		if _, err := runCell(cfg, c); err != nil {
			return attribution{}, err
		}
		return att, nil
	})
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("BHMR condition attribution per arrival (n=%d, %d seeds)", cfg.N, cfg.Seeds),
		Header: []string{"environment", "arrivals", "c1", "c2", "c2-only", "saved-vs-fdas"},
	}
	idx := 0
	for _, env := range envs {
		var sum attribution
		for s := 0; s < cfg.Seeds; s++ {
			v := vals[idx]
			idx++
			sum.arrivals += v.arrivals
			sum.c1 += v.c1
			sum.c2 += v.c2
			sum.c2Only += v.c2Only
			sum.saved += v.saved
		}
		t.AddRow(env,
			fmt.Sprintf("%d", sum.arrivals), fmt.Sprintf("%d", sum.c1), fmt.Sprintf("%d", sum.c2),
			fmt.Sprintf("%d", sum.c2Only), fmt.Sprintf("%d", sum.saved))
	}
	return t, nil
}

// Guarantees is an extension experiment summarizing the guarantee
// spectrum on identical workloads: forced checkpoints per message, whether
// the run satisfies RDT, and how many checkpoints are useless (belong to
// no consistent global checkpoint), for the uncoordinated baseline, the
// index-based BCS protocol (Z-cycle freedom only), the paper's protocol
// and FDAS. It runs on a reduced horizon because the useless-checkpoint
// oracle needs the O(M²) chain closure.
func Guarantees(cfg Config) (*stats.Table, error) {
	type outcome struct {
		forced       float64
		rdt          bool
		trackable    float64
		hasTrackable bool
		useless      int
	}
	kinds := []core.Kind{core.KindNone, core.KindBCS, core.KindBHMR, core.KindFDAS}
	cells := make([]cell, 0, len(kinds)*cfg.Seeds)
	for _, kind := range kinds {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cells = append(cells, cell{
				env: "random", kind: kind, mean: cfg.mid(), seed: int64(800*seed + 17),
				duration: cfg.Duration / 5,
			})
		}
	}
	vals, err := runGrid(cfg, len(cells), func(i int) (outcome, error) {
		res, err := runCell(cfg, cells[i])
		if err != nil {
			return outcome{}, err
		}
		out := outcome{forced: res.Stats.ForcedPerMessage()}
		a := analyzers.Get().(*rgraph.Analyzer)
		rep, err := a.CheckRDT(res.Pattern, 1)
		analyzers.Put(a)
		if err != nil {
			return outcome{}, err
		}
		out.rdt = rep.RDT
		if rep.RPathPairs > 0 {
			out.trackable = 100 * float64(rep.TrackablePairs) / float64(rep.RPathPairs)
			out.hasTrackable = true
		}
		chains, err := rgraph.NewChains(res.Pattern)
		if err != nil {
			return outcome{}, err
		}
		p := res.Pattern
		for i := 0; i < p.N; i++ {
			for x := range p.Checkpoints[i] {
				if chains.Useless(model.CkptID{Proc: model.ProcID(i), Index: x}) {
					out.useless++
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Guarantee spectrum in the random environment (n=%d)", cfg.N),
		Header: []string{"protocol", "forced/msg", "rdt", "trackable-%", "useless-ckpts", "guarantee"},
	}
	guarantee := map[core.Kind]string{
		core.KindNone: "none",
		core.KindBCS:  "no useless checkpoints",
		core.KindBHMR: "RDT",
		core.KindFDAS: "RDT",
	}
	idx := 0
	for _, kind := range kinds {
		var (
			forced    stats.Sample
			trackable stats.Sample
			rdtOK     = true
			useless   int
		)
		for s := 0; s < cfg.Seeds; s++ {
			v := vals[idx]
			idx++
			forced = append(forced, v.forced)
			rdtOK = rdtOK && v.rdt
			if v.hasTrackable {
				trackable = append(trackable, v.trackable)
			}
			useless += v.useless
		}
		t.AddRow(kind.String(), stats.Format(forced.Mean()),
			fmt.Sprintf("%v", rdtOK), stats.Format(trackable.Mean()),
			fmt.Sprintf("%d", useless), guarantee[kind])
	}
	return t, nil
}
