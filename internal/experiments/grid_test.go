package experiments

import (
	"errors"
	"fmt"
	"testing"

	"github.com/rdt-go/rdt/internal/obs"
)

// TestGridDeterminism is the regression test for the parallel grid's
// central contract: a sequential run (Jobs=1) and a heavily oversubscribed
// parallel run (Jobs=8 on any machine) must produce byte-identical
// artifacts. The rendered CSV is compared, so every formatted digit of
// every cell is covered.
func TestGridDeterminism(t *testing.T) {
	artifacts := func(cfg Config) map[string]string {
		t.Helper()
		out := map[string]string{}
		for _, env := range Environments() {
			s, err := FigureR(cfg, env)
			if err != nil {
				t.Fatalf("jobs=%d: figure %s: %v", cfg.Jobs, env, err)
			}
			out["figure_"+env] = s.Table().CSV()
		}
		red, err := ReductionVsFDAS(cfg)
		if err != nil {
			t.Fatalf("jobs=%d: reduction: %v", cfg.Jobs, err)
		}
		out["reduction"] = red.CSV()
		abl, err := Ablation(cfg)
		if err != nil {
			t.Fatalf("jobs=%d: ablation: %v", cfg.Jobs, err)
		}
		out["ablation"] = abl.CSV()
		return out
	}

	seqCfg := Quick()
	seqCfg.Jobs = 1
	parCfg := Quick()
	parCfg.Jobs = 8

	seq := artifacts(seqCfg)
	par := artifacts(parCfg)
	for name, want := range seq {
		if got := par[name]; got != want {
			t.Errorf("%s differs between jobs=1 and jobs=8:\n--- jobs=1\n%s\n--- jobs=8\n%s", name, want, got)
		}
	}
}

// TestGridCountsCompletedCells: the progress counter must tally exactly
// one increment per grid cell even when many workers complete cells
// concurrently.
func TestGridCountsCompletedCells(t *testing.T) {
	cfg := Quick()
	cfg.Jobs = 8
	cfg.Obs = obs.NewRegistry()
	if _, err := FigureR(cfg, "random"); err != nil {
		t.Fatalf("figure: %v", err)
	}
	want := int64(len(cfg.BasicMeans) * len(cfg.Protocols) * cfg.Seeds)
	if got := cfg.Obs.Counter("rdt_experiment_runs_total").Value(); got != want {
		t.Errorf("rdt_experiment_runs_total = %d, want %d", got, want)
	}
}

// TestGridError: a failing cell aborts the grid with its error, on both
// the sequential and the parallel path.
func TestGridError(t *testing.T) {
	boom := errors.New("boom")
	for _, jobs := range []int{1, 4} {
		cfg := Quick()
		cfg.Jobs = jobs
		_, err := runGrid(cfg, 16, func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("jobs=%d: error = %v, want boom", jobs, err)
		}
	}
}

// TestGridOrder: results land in their pre-assigned slots whatever the
// worker count.
func TestGridOrder(t *testing.T) {
	for _, jobs := range []int{1, 3, 16} {
		cfg := Quick()
		cfg.Jobs = jobs
		vals, err := runGrid(cfg, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range vals {
			if v != i*i {
				t.Fatalf("jobs=%d: slot %d = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}
