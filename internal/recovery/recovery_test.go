package recovery

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/sim"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/workload"
)

// storeFromPattern loads every checkpoint of a recorded pattern into a
// store, substituting the all-zero vector for unannotated (initial/final)
// checkpoints, as the runtime does.
func storeFromPattern(t *testing.T, p *model.Pattern) storage.Store {
	t.Helper()
	s := storage.NewMemory()
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			ck := &p.Checkpoints[i][x]
			tdv := ck.TDV
			if tdv == nil {
				if ck.Kind == model.KindFinal {
					// Final checkpoints close intervals for analysis only;
					// recovery works with the protocol-recorded ones.
					continue
				}
				tdv = make([]int, p.N)
			}
			if err := s.Put(storage.Checkpoint{Proc: i, Index: x, Kind: ck.Kind, TDV: tdv}); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	return s
}

func simulate(t *testing.T, kind core.Kind, seed int64) *model.Pattern {
	t.Helper()
	cfg := sim.DefaultConfig(kind, seed)
	cfg.N = 5
	cfg.Duration = 100
	res, err := sim.Run(cfg, &workload.Random{MeanGap: 1})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return res.Pattern
}

func manager(t *testing.T, p *model.Pattern) *Manager {
	t.Helper()
	m, err := NewManager(storeFromPattern(t, p), p.N)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, 3); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewManager(storage.NewMemory(), 0); err == nil {
		t.Error("zero processes accepted")
	}
}

// TestLineMatchesTraceOracle is the cross-validation at the heart of the
// recovery design: the TDV-only recovery line must equal the line computed
// from the full message trace, for RDT and non-RDT runs alike (orphan
// detection needs only causal chains, which dependency vectors capture).
func TestLineMatchesTraceOracle(t *testing.T) {
	for _, kind := range []core.Kind{core.KindBHMR, core.KindFDAS, core.KindNone} {
		t.Run(kind.String(), func(t *testing.T) {
			p := simulate(t, kind, 13)
			m := manager(t, p)
			bounds, err := m.Latest()
			if err != nil {
				t.Fatalf("latest: %v", err)
			}
			plan, err := m.LineFrom(bounds)
			if err != nil {
				t.Fatalf("line: %v", err)
			}
			oracle, err := rgraph.RecoveryLine(p, bounds)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if !plan.Line.Equal(oracle) {
				t.Errorf("TDV line %v != trace line %v", plan.Line, oracle)
			}
			ok, err := rgraph.IsConsistent(p, plan.Line)
			if err != nil || !ok {
				t.Errorf("line %v not consistent: %v %v", plan.Line, ok, err)
			}
		})
	}
}

func TestRDTRunsRollBackToLatestCheckpoints(t *testing.T) {
	// Under an RDT protocol no checkpoint is useless, and the latest
	// stored checkpoints always dominate a consistent cut not far below;
	// crucially, the crashed process itself never rolls below its own
	// last checkpoint.
	p := simulate(t, core.KindBHMR, 7)
	m := manager(t, p)
	plan, err := m.AfterCrash(2)
	if err != nil {
		t.Fatalf("after crash: %v", err)
	}
	for i, d := range plan.Depth {
		if d < 0 {
			t.Errorf("process %d has negative rollback depth", i)
		}
	}
	ok, err := rgraph.IsConsistent(p, plan.Line)
	if err != nil || !ok {
		t.Errorf("line not consistent: %v %v", ok, err)
	}
}

func TestDominoEffectIsWorseWithoutCoordination(t *testing.T) {
	// Average total rollback over seeds: uncoordinated checkpointing must
	// lose strictly more intervals than the paper's protocol.
	total := func(kind core.Kind) int {
		sum := 0
		for seed := int64(1); seed <= 5; seed++ {
			p := simulate(t, kind, seed)
			m := manager(t, p)
			plan, err := m.AfterCrash(0)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			sum += plan.TotalRollback()
		}
		return sum
	}
	bhmr := total(core.KindBHMR)
	none := total(core.KindNone)
	if none <= bhmr {
		t.Errorf("uncoordinated rollback %d not worse than BHMR %d", none, bhmr)
	}
}

func TestRestoreAndGC(t *testing.T) {
	p := simulate(t, core.KindBHMR, 19)
	m := manager(t, p)
	plan, err := m.AfterCrash(1)
	if err != nil {
		t.Fatalf("after crash: %v", err)
	}
	cps, err := m.Restore(plan.Line)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(cps) != p.N {
		t.Fatalf("restored %d checkpoints, want %d", len(cps), p.N)
	}
	for i, cp := range cps {
		if cp.Proc != i || cp.Index != plan.Line[i] {
			t.Errorf("restored %+v for line entry %d", cp, plan.Line[i])
		}
	}
	removed, err := m.GC(plan.Line)
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	want := 0
	for i := range plan.Line {
		want += plan.Line[i] // indexes 0..line-1 are collected
	}
	if removed != want {
		t.Errorf("gc removed %d, want %d", removed, want)
	}
	// The line itself must survive GC.
	if _, err := m.Restore(plan.Line); err != nil {
		t.Errorf("line lost after GC: %v", err)
	}
}

// TestGCMetricAndSurvivors pins the GC contract on a hand-built store:
// everything strictly below the line is deleted, the line itself and
// later checkpoints survive, and the rdt_recovery_gc_total counter
// advances by exactly the number of checkpoints discarded.
func TestGCMetricAndSurvivors(t *testing.T) {
	s := storage.NewMemory()
	for proc := 0; proc < 2; proc++ {
		for x := 0; x <= 2; x++ {
			cp := storage.Checkpoint{Proc: proc, Index: x, TDV: []int{0, 0}}
			if err := s.Put(cp); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	m, err := NewManager(s, 2)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	reg := obs.NewRegistry()
	m.Observe(reg, nil)

	removed, err := m.GC(model.GlobalCheckpoint{2, 1})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if removed != 3 { // proc 0 loses indexes 0,1; proc 1 loses index 0
		t.Errorf("gc removed %d, want 3", removed)
	}
	if got := reg.Snapshot().CounterValue("rdt_recovery_gc_total"); got != 3 {
		t.Errorf("rdt_recovery_gc_total = %d, want 3", got)
	}

	wantIdx := [][]int{{2}, {1, 2}}
	for proc, want := range wantIdx {
		got, err := s.Indexes(proc)
		if err != nil {
			t.Fatalf("indexes %d: %v", proc, err)
		}
		if len(got) != len(want) {
			t.Fatalf("process %d survivors %v, want %v", proc, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("process %d survivors %v, want %v", proc, got, want)
			}
		}
	}

	// Idempotent: a second pass below the same line finds nothing and
	// leaves the counter untouched.
	removed, err = m.GC(model.GlobalCheckpoint{2, 1})
	if err != nil || removed != 0 {
		t.Errorf("second gc = (%d, %v), want (0, nil)", removed, err)
	}
	if got := reg.Snapshot().CounterValue("rdt_recovery_gc_total"); got != 3 {
		t.Errorf("counter moved on empty GC: %d", got)
	}
}

func TestLineFromValidation(t *testing.T) {
	p := simulate(t, core.KindBHMR, 3)
	m := manager(t, p)
	if _, err := m.LineFrom(model.GlobalCheckpoint{0}); err == nil {
		t.Error("short bounds accepted")
	}
	if _, err := m.AfterCrash(99); err == nil {
		t.Error("out-of-range crash accepted")
	}
	if _, err := m.Restore(model.GlobalCheckpoint{0}); err == nil {
		t.Error("short line accepted by Restore")
	}
}

func TestLatestFailsOnEmptyStore(t *testing.T) {
	m, err := NewManager(storage.NewMemory(), 2)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	if _, err := m.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLineFromMissingIntermediateCheckpoint(t *testing.T) {
	s := storage.NewMemory()
	// P0 depends on P1's interval 2, but P1 only stored index 0 and 2; the
	// walk down from 2 needs index 1 and must fail cleanly.
	put := func(proc, index int, tdv []int) {
		t.Helper()
		if err := s.Put(storage.Checkpoint{Proc: proc, Index: index, TDV: tdv}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	put(0, 0, []int{0, 0})
	put(0, 1, []int{1, 2}) // depends on P1 interval 2
	put(1, 0, []int{0, 0})
	put(1, 2, []int{3, 2}) // depends on P0 interval 3 > bound 1
	m, err := NewManager(s, 2)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	if _, err := m.LineFrom(model.GlobalCheckpoint{1, 2}); err == nil {
		t.Error("missing intermediate checkpoint went unnoticed")
	}
}

func TestPlanTotalRollback(t *testing.T) {
	plan := &Plan{Depth: []int{1, 0, 3}}
	if got := plan.TotalRollback(); got != 4 {
		t.Errorf("total = %d, want 4", got)
	}
}

func TestReplaySet(t *testing.T) {
	// Build a small pattern with a known in-transit message at cut {1,1}.
	b := model.NewBuilder(2)
	m1 := b.Send(0, 1)
	b.Checkpoint(0, model.KindBasic, []int{1, 0})
	if err := b.Deliver(m1); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	b.Checkpoint(1, model.KindBasic, []int{1, 1})
	m2 := b.Send(1, 0) // sent in I_{1,2}... before C_{1,2}? No: after C_{1,1}.
	if err := b.Deliver(m2); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	b.Checkpoint(1, model.KindBasic, []int{1, 2})
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	// At cut {1,2}: m2 was sent in I_{1,2} <= 2 and delivered in I_{0,2} > 1
	// at P0 -> in transit.
	payloads := map[int][]byte{m2: []byte("pay")}
	lookup := func(id int) ([]byte, bool) {
		d, ok := payloads[id]
		return d, ok
	}
	set, err := ReplaySet(p, model.GlobalCheckpoint{1, 2}, lookup)
	if err != nil {
		t.Fatalf("replay set: %v", err)
	}
	if len(set) != 1 || set[0].ID != m2 || string(set[0].Payload) != "pay" {
		t.Errorf("replay set = %+v", set)
	}
	// Missing payloads are an error.
	delete(payloads, m2)
	if _, err := ReplaySet(p, model.GlobalCheckpoint{1, 2}, lookup); err == nil {
		t.Error("missing payload went unnoticed")
	}
	// Nil payload function is allowed.
	set, err = ReplaySet(p, model.GlobalCheckpoint{1, 2}, nil)
	if err != nil || len(set) != 1 {
		t.Errorf("nil payload fn: %v %v", set, err)
	}
	// Bad cut rejected.
	if _, err := ReplaySet(p, model.GlobalCheckpoint{9, 9}, nil); err == nil {
		t.Error("bad cut accepted")
	}
}

// TestLatestQuarantinesCorruptCheckpoint: a torn latest checkpoint — the
// classic machine-died-mid-write artifact — is moved aside and the line
// computation falls back one index instead of failing the recovery.
func TestLatestQuarantinesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.NewFile(dir)
	if err != nil {
		t.Fatalf("file store: %v", err)
	}
	const n = 2
	for proc := 0; proc < n; proc++ {
		for idx := 0; idx <= 2; idx++ {
			if err := store.Put(storage.Checkpoint{Proc: proc, Index: idx, TDV: make([]int, n)}); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	// Tear P0's latest checkpoint on disk.
	if err := os.WriteFile(filepath.Join(dir, "ckpt_0_2.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	m, err := NewManager(store, n)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	m.Observe(reg, tracer)
	plan, err := m.AfterCrash(0)
	if err != nil {
		t.Fatalf("after crash with torn checkpoint: %v", err)
	}
	if plan.Bounds[0] != 1 {
		t.Errorf("P0 bound = %d, want fallback to 1", plan.Bounds[0])
	}
	if plan.Bounds[1] != 2 {
		t.Errorf("P1 bound = %d, want 2", plan.Bounds[1])
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt_0_2.json.corrupt")); err != nil {
		t.Errorf("torn checkpoint not preserved as .corrupt: %v", err)
	}
	if got := reg.Counter("rdt_recovery_quarantined_total").Value(); got != 1 {
		t.Errorf("rdt_recovery_quarantined_total = %d, want 1", got)
	}
	var saw bool
	for _, ev := range tracer.Tail(tracer.Len()) {
		if ev.Type == obs.EventQuarantine && ev.Proc == 0 && ev.Value == 2 {
			saw = true
		}
	}
	if !saw {
		t.Error("trace has no quarantine event for C{0,2}")
	}
	// The same recovery still restores: the fallback checkpoint reads.
	if _, err := m.Restore(plan.Line); err != nil {
		t.Fatalf("restore after quarantine: %v", err)
	}
}
