// Package recovery implements rollback recovery on top of stored
// checkpoints: computing recovery lines from the dependency vectors the
// protocols persist with every checkpoint, quantifying rollback (the
// domino-effect metric), and garbage-collecting obsolete checkpoints.
//
// The central observation is that dependency vectors alone suffice: a
// global checkpoint {C_{k,g[k]}} is consistent if and only if no stored
// vector TDV_{l,g[l]} has an entry TDV_{l,g[l]}[k] > g[k] — an orphan
// message is a causal chain of length one, and any longer violating causal
// chain crosses the cut in an orphan message. The recovery manager
// therefore never needs the message trace, only the checkpoint store,
// exactly as a production rollback system would.
package recovery

import (
	"errors"
	"fmt"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
)

// ErrNoCheckpoint is returned when a process has no stored checkpoint at
// or below its bound.
var ErrNoCheckpoint = errors.New("no usable checkpoint")

// Plan describes the outcome of a recovery-line computation.
type Plan struct {
	// Line is the recovery line: the maximum consistent global checkpoint
	// dominated by the bounds.
	Line model.GlobalCheckpoint
	// Bounds is what each process could have restarted from at best (its
	// latest stored checkpoint, or the crash bound).
	Bounds model.GlobalCheckpoint
	// Depth[i] = Bounds[i] - Line[i]: how many checkpoint intervals
	// process i loses. Domino effect = depths larger than the failure
	// itself forced.
	Depth []int
}

// TotalRollback returns the sum of the per-process rollback depths.
func (p *Plan) TotalRollback() int {
	total := 0
	for _, d := range p.Depth {
		total += d
	}
	return total
}

// Manager computes recovery lines over a checkpoint store.
type Manager struct {
	store  storage.Store
	n      int
	obs    *obs.Registry
	tracer *obs.Tracer
}

// NewManager creates a recovery manager for a system of n processes.
func NewManager(store storage.Store, n int) (*Manager, error) {
	if n <= 0 {
		return nil, fmt.Errorf("recovery: invalid process count %d", n)
	}
	if store == nil {
		return nil, errors.New("recovery: nil store")
	}
	return &Manager{store: store, n: n}, nil
}

// Observe attaches observability to the manager: every computed
// recovery line reports per-process rollback depths (histogram and
// rollback events) and bumps the recovery counter. Either argument may
// be nil. It returns the manager for chaining.
func (m *Manager) Observe(reg *obs.Registry, tr *obs.Tracer) *Manager {
	m.obs = reg
	m.tracer = tr
	return m
}

// observePlan accounts for one recovery-line computation.
func (m *Manager) observePlan(p *Plan) {
	if m.obs == nil && m.tracer == nil {
		return
	}
	m.obs.Counter("rdt_recoveries_total").Inc()
	perProc := m.obs.Histogram("rdt_rollback_depth", obs.DepthBuckets, "scope", "process")
	for proc, d := range p.Depth {
		perProc.Observe(float64(d))
		m.tracer.Record(obs.Event{Type: obs.EventRollback, Proc: proc, Value: d})
	}
	m.obs.Histogram("rdt_rollback_depth", obs.DepthBuckets, "scope", "total").
		Observe(float64(p.TotalRollback()))
}

// Latest returns the per-process latest usable stored checkpoint
// indexes. A corrupt latest checkpoint — typically the one being written
// when the machine died — is quarantined (moved aside, preserved where
// the medium allows) and the previous index is used instead, so one torn
// file degrades the recovery line by one interval instead of failing the
// whole recovery.
func (m *Manager) Latest() (model.GlobalCheckpoint, error) {
	bounds := make(model.GlobalCheckpoint, m.n)
	for i := 0; i < m.n; i++ {
		cp, err := m.latestUsable(i)
		if err != nil {
			return nil, err
		}
		bounds[i] = cp.Index
	}
	return bounds, nil
}

// latestUsable walks a process's stored checkpoints from the highest
// index down, quarantining undecodable ones, until a readable checkpoint
// is found.
func (m *Manager) latestUsable(proc int) (storage.Checkpoint, error) {
	indexes, err := m.store.Indexes(proc)
	if err != nil {
		return storage.Checkpoint{}, fmt.Errorf("recovery: process %d: %w", proc, err)
	}
	for i := len(indexes) - 1; i >= 0; i-- {
		cp, err := m.store.Get(proc, indexes[i])
		switch {
		case err == nil:
			return cp, nil
		case errors.Is(err, storage.ErrCorrupt):
			if qerr := storage.Quarantine(m.store, proc, indexes[i]); qerr != nil {
				return storage.Checkpoint{}, fmt.Errorf("recovery: quarantine C{%d,%d}: %w", proc, indexes[i], qerr)
			}
			m.noteQuarantine(proc, indexes[i], err)
		case errors.Is(err, storage.ErrNotFound):
			// Deleted between the listing and the read; keep walking.
		default:
			return storage.Checkpoint{}, fmt.Errorf("recovery: process %d: %w", proc, err)
		}
	}
	return storage.Checkpoint{}, fmt.Errorf("recovery: process %d: %w", proc, ErrNoCheckpoint)
}

// noteQuarantine accounts for one corrupt checkpoint moved aside.
func (m *Manager) noteQuarantine(proc, index int, cause error) {
	m.obs.Counter("rdt_recovery_quarantined_total").Inc()
	m.tracer.Record(obs.Event{
		Type: obs.EventQuarantine, Proc: proc, Value: index, Detail: cause.Error(),
	})
}

// LineFrom computes the recovery line dominated by the given bounds, using
// only the dependency vectors stored with the checkpoints. Every process
// must have stored checkpoints (at least the initial one) at every index
// the fixpoint visits — which the runtime guarantees, since it persists
// all of them.
func (m *Manager) LineFrom(bounds model.GlobalCheckpoint) (*Plan, error) {
	if len(bounds) != m.n {
		return nil, fmt.Errorf("recovery: bounds have %d entries, want %d", len(bounds), m.n)
	}
	g := bounds.Clone()
	tdv := make([][]int, m.n) // current TDV_{l,g[l]}
	for l := 0; l < m.n; l++ {
		v, err := m.vectorAt(l, g[l])
		if err != nil {
			return nil, err
		}
		tdv[l] = v
	}
	for changed := true; changed; {
		changed = false
		for l := 0; l < m.n; l++ {
			for k := 0; k < m.n; k++ {
				if k == l || tdv[l][k] <= g[k] {
					continue
				}
				// C_{l,g[l]} depends on an interval of P_k beyond the cut:
				// P_l must roll back below the delivery that created the
				// dependency. Walk down one checkpoint at a time; each step
				// discards at least one interval, so this terminates.
				if g[l] == 0 {
					return nil, fmt.Errorf("recovery: process %d cannot roll back below its initial checkpoint", l)
				}
				g[l]--
				v, err := m.vectorAt(l, g[l])
				if err != nil {
					return nil, err
				}
				tdv[l] = v
				changed = true
			}
		}
	}
	plan := &Plan{
		Line:   g,
		Bounds: bounds.Clone(),
		Depth:  rollbackDepth(bounds, g),
	}
	m.observePlan(plan)
	return plan, nil
}

// AfterCrash computes the recovery line when the given processes crash:
// each crashed process restarts from its latest stored checkpoint, the
// others are bounded by theirs. (With every checkpoint persisted, the two
// bounds coincide; the distinction matters when surviving processes keep
// volatile state beyond their last checkpoint — they too must roll back to
// a stored one.)
func (m *Manager) AfterCrash(crashed ...int) (*Plan, error) {
	for _, p := range crashed {
		if p < 0 || p >= m.n {
			return nil, fmt.Errorf("recovery: crashed process %d out of range", p)
		}
	}
	bounds, err := m.Latest()
	if err != nil {
		return nil, err
	}
	return m.LineFrom(bounds)
}

// Restore fetches the stored checkpoints selected by the line, returning
// the application state snapshots to reinstall, one per process.
func (m *Manager) Restore(line model.GlobalCheckpoint) ([]storage.Checkpoint, error) {
	if len(line) != m.n {
		return nil, fmt.Errorf("recovery: line has %d entries, want %d", len(line), m.n)
	}
	out := make([]storage.Checkpoint, m.n)
	for i := 0; i < m.n; i++ {
		cp, err := m.store.Get(i, line[i])
		if err != nil {
			return nil, fmt.Errorf("recovery: restore process %d: %w", i, err)
		}
		out[i] = cp
	}
	return out, nil
}

// GC removes every checkpoint strictly below the recovery line; they can
// never be needed again. It returns the number of checkpoints discarded.
func (m *Manager) GC(line model.GlobalCheckpoint) (int, error) {
	removed, err := storage.GCBelow(m.store, line)
	if removed > 0 {
		m.obs.Counter("rdt_recovery_gc_total").Add(int64(removed))
	}
	return removed, err
}

func (m *Manager) vectorAt(proc, index int) ([]int, error) {
	cp, err := m.store.Get(proc, index)
	if err != nil {
		return nil, fmt.Errorf("recovery: checkpoint C{%d,%d}: %w", proc, index, err)
	}
	if len(cp.TDV) != m.n {
		return nil, fmt.Errorf("recovery: checkpoint C{%d,%d} has TDV of length %d, want %d",
			proc, index, len(cp.TDV), m.n)
	}
	return cp.TDV, nil
}

func rollbackDepth(bounds, line model.GlobalCheckpoint) []int {
	depth := make([]int, len(bounds))
	for i := range bounds {
		depth[i] = bounds[i] - line[i]
	}
	return depth
}

// ReplayMessage is one in-transit message to re-send after a rollback.
type ReplayMessage struct {
	ID      int
	From    int
	To      int
	Payload []byte
}

// ReplaySet computes, from the recorded pattern and a recovery line, the
// messages that were in the channels at the line and must be re-sent from
// the message log when the computation resumes. The payload function maps
// a message id to its logged payload (for example Cluster.Payload); it may
// be nil when only the addressing matters.
func ReplaySet(p *model.Pattern, line model.GlobalCheckpoint, payload func(id int) ([]byte, bool)) ([]ReplayMessage, error) {
	inTransit, err := rgraph.InTransit(p, line)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	out := make([]ReplayMessage, 0, len(inTransit))
	for _, m := range inTransit {
		rm := ReplayMessage{ID: m.ID, From: int(m.From), To: int(m.To)}
		if payload != nil {
			data, ok := payload(m.ID)
			if !ok {
				return nil, fmt.Errorf("recovery: message %d has no logged payload", m.ID)
			}
			rm.Payload = data
		}
		out = append(out, rm)
	}
	return out, nil
}
