package rdt_test

import (
	"fmt"
	"log"

	rdt "github.com/rdt-go/rdt"
)

// ExampleCheckRDT analyzes the paper's Figure 1 pattern: its chain
// [m3 m2] has no causal sibling, so the pattern violates RDT.
func ExampleCheckRDT() {
	pattern, err := rdt.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	report, err := rdt.CheckRDT(pattern, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RDT:", report.RDT)
	fmt.Println("first violation:", report.Violations[0])
	// Output:
	// RDT: false
	// first violation: C{2,1} ~> C{0,2} untrackable
}

// ExampleMinConsistentGlobal computes the minimum consistent global
// checkpoint containing C_{i,2} of Figure 1 — the global state a debugger
// restores for a causal distributed breakpoint at that checkpoint.
func ExampleMinConsistentGlobal() {
	pattern, err := rdt.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	min, err := rdt.MinConsistentGlobal(pattern, rdt.CkptID{Proc: 0, Index: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(min)
	// Output:
	// {2,1,1}
}

// ExampleNewCluster runs two processes under the paper's protocol on the
// concurrent runtime and certifies the recorded pattern offline.
func ExampleNewCluster() {
	c, err := rdt.NewCluster(rdt.ClusterConfig{N: 2, Protocol: rdt.BHMR})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Node(0).Send(1, []byte("work")); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Node(1).Checkpoint(); err != nil {
		log.Fatal(err)
	}
	c.Quiesce()
	pattern, err := c.Stop()
	if err != nil {
		log.Fatal(err)
	}
	report, err := rdt.CheckRDT(pattern, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("messages:", len(pattern.Messages))
	fmt.Println("RDT:", report.RDT)
	// Output:
	// messages: 3
	// RDT: true
}

// ExampleSimulate runs a deterministic simulation of the client/server
// environment and checks the protocol's guarantee.
func ExampleSimulate() {
	w, err := rdt.WorkloadByName("client-server")
	if err != nil {
		log.Fatal(err)
	}
	cfg := rdt.DefaultSimConfig(rdt.BHMR, 1)
	cfg.N = 4
	cfg.Duration = 50
	res, err := rdt.Simulate(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	report, err := rdt.CheckRDT(res.Pattern, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RDT:", report.RDT)
	fmt.Println("annotations match oracle:", rdt.VerifyRecordedTDVs(res.Pattern) == nil)
	// Output:
	// RDT: true
	// annotations match oracle: true
}

// ExampleExplore verifies the paper's protocol over EVERY interleaving of
// a small scenario — exhaustive schedule coverage rather than sampling.
func ExampleExplore() {
	scripts := [][]rdt.ScenarioOp{
		{rdt.ScenarioSend(1), rdt.ScenarioCheckpoint()},
		{rdt.ScenarioSend(0)},
	}
	violations := 0
	res, err := rdt.Explore(rdt.BHMR, scripts, func(_ []rdt.ScheduleChoice, p *rdt.Pattern) error {
		report, err := rdt.CheckRDT(p, 1)
		if err != nil {
			return err
		}
		if !report.RDT {
			violations++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedules:", res.Executions)
	fmt.Println("violations:", violations)
	// Output:
	// schedules: 20
	// violations: 0
}

// ExamplePattern_ASCII renders a hand-built pattern as a space-time
// diagram.
func ExamplePattern_ASCII() {
	b := rdt.NewPatternBuilder(2)
	m := b.Send(0, 1)
	b.Checkpoint(0, rdt.KindBasic, nil)
	if err := b.Deliver(m); err != nil {
		log.Fatal(err)
	}
	p, err := b.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.ASCII())
	// Output:
	// P0  [0]-s0-[1]------------
	// P1  -----------[0]-d0-[1]-
}
