package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-csv", dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"R = forced/basic in the random environment",
		"R = forced/basic in the client-server environment",
		"Forced-checkpoint reduction vs FDAS",
		"Piggybacked control information",
		"Total rollback depth",
		"ablation",
		"Corollary 4.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, file := range []string{
		"figure7_random.csv", "figure8_groups.csv", "figure9_client-server.csv",
		"table_reduction_vs_fdas.csv", "table_piggyback.csv",
		"table_domino.csv", "table_ablation.csv", "table_corollary45.csv", "figure_delay_sensitivity.csv", "table_condition_attribution.csv", "table_guarantees.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Errorf("artifact %s missing: %v", file, err)
			continue
		}
		if len(data) == 0 || !strings.Contains(string(data), ",") {
			t.Errorf("artifact %s malformed", file)
		}
	}
}

// TestRunJobsIdenticalOutput runs the reduced grid sequentially and with
// a parallel worker pool: the rendered output (and the completed-cell
// tally) must be identical, per the determinism contract of the grid.
func TestRunJobsIdenticalOutput(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-quick", "-jobs", "1"}, &seq); err != nil {
		t.Fatalf("run -jobs 1: %v", err)
	}
	if err := run([]string{"-quick", "-jobs", "8"}, &par); err != nil {
		t.Fatalf("run -jobs 8: %v", err)
	}
	seqText := strings.ReplaceAll(seq.String(), "(jobs=1)", "(jobs=N)")
	parText := strings.ReplaceAll(par.String(), "(jobs=8)", "(jobs=N)")
	if seqText != parText {
		t.Error("-jobs 1 and -jobs 8 outputs differ")
	}
	// The completed-cell count must be the full grid in both runs: cells
	// finished by concurrent workers may not be lost.
	seqDone, parDone := completedCount(t, seq.String()), completedCount(t, par.String())
	if seqDone == 0 || seqDone != parDone {
		t.Errorf("completed cells: sequential %d, parallel %d", seqDone, parDone)
	}
}

// completedCount extracts N from the trailing "completed N simulations"
// summary line.
func completedCount(t *testing.T, out string) int {
	t.Helper()
	i := strings.LastIndex(out, "completed ")
	if i < 0 {
		t.Fatalf("summary line missing in output")
	}
	var n int
	if _, err := fmt.Sscanf(out[i:], "completed %d simulations", &n); err != nil {
		t.Fatalf("unparsable summary %q: %v", out[i:], err)
	}
	return n
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	// A CSV directory that cannot be created.
	occupied := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run([]string{"-quick", "-csv", filepath.Join(occupied, "sub")}, &out); err == nil {
		t.Error("uncreatable csv dir accepted")
	}
}
