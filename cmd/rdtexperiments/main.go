// Command rdtexperiments regenerates the complete evaluation: the
// forced-checkpoint overhead figures for the random, overlapping-group
// and client/server environments (Figures 7–9), the reduction-vs-FDAS
// table (the paper's headline "never less than 10%"), the piggyback-size
// comparison of Section 5.2, and the extension experiments (domino
// effect, BHMR-family ablation, Corollary 4.5 agreement). Tables are
// printed to stdout; -csv additionally writes one CSV per artifact.
//
// Usage:
//
//	rdtexperiments            # paper-scale run (takes a few minutes)
//	rdtexperiments -quick     # reduced grid for smoke testing
//	rdtexperiments -csv out/  # also write CSV files
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/rdt-go/rdt/internal/experiments"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/stats"
	"github.com/rdt-go/rdt/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdtexperiments", flag.ContinueOnError)
	var (
		quick       = fs.Bool("quick", false, "use the reduced experiment grid")
		csvDir      = fs.String("csv", "", "directory to write CSV artifacts into")
		jobs        = fs.Int("jobs", 0, "worker goroutines for the simulation grid (0 = GOMAXPROCS); output is identical for every value")
		metricsAddr = fs.String("metrics-addr", "", "serve live Prometheus /metrics for the running grid on this address (:0 picks a port)")
		pprof       = fs.Bool("pprof", false, "also mount /debug/pprof and runtime gauges on the -metrics-addr server")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(out, "rdtexperiments %s\n", version.String())
		return nil
	}
	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Jobs = *jobs
	// The registry is always on: its rdt_experiment_runs_total counter is
	// the progress measure reported at the end (incremented atomically, so
	// the tally is exact under any -jobs value).
	cfg.Obs = obs.NewRegistry()
	if *metricsAddr != "" {
		var opts []obs.ServerOption
		if *pprof {
			opts = append(opts, obs.WithProfiling())
		}
		srv, err := obs.Serve(*metricsAddr, cfg.Obs, nil, opts...)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Fprintf(out, "metrics: http://%s/metrics\n", srv.Addr())
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	emit := func(name string, t *stats.Table) error {
		fmt.Fprintln(out, t.Render())
		fmt.Fprintln(out)
		if *csvDir == "" {
			return nil
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		return nil
	}

	for i, env := range experiments.Environments() {
		series, err := experiments.FigureR(cfg, env)
		if err != nil {
			return err
		}
		if err := emit(fmt.Sprintf("figure%d_%s", 7+i, env), series.Table()); err != nil {
			return err
		}
	}

	reduction, err := experiments.ReductionVsFDAS(cfg)
	if err != nil {
		return err
	}
	if err := emit("table_reduction_vs_fdas", reduction); err != nil {
		return err
	}

	piggyback, err := experiments.PiggybackSizes([]int{4, 8, 16, 32, 64})
	if err != nil {
		return err
	}
	if err := emit("table_piggyback", piggyback); err != nil {
		return err
	}

	domino, err := experiments.Domino(cfg)
	if err != nil {
		return err
	}
	if err := emit("table_domino", domino); err != nil {
		return err
	}

	ablation, err := experiments.Ablation(cfg)
	if err != nil {
		return err
	}
	if err := emit("table_ablation", ablation); err != nil {
		return err
	}

	agreement, err := experiments.MinGlobalAgreement(cfg)
	if err != nil {
		return err
	}
	if err := emit("table_corollary45", agreement); err != nil {
		return err
	}

	delays, err := experiments.DelaySensitivity(cfg)
	if err != nil {
		return err
	}
	if err := emit("figure_delay_sensitivity", delays.Table()); err != nil {
		return err
	}

	attribution, err := experiments.ConditionAttribution(cfg)
	if err != nil {
		return err
	}
	if err := emit("table_condition_attribution", attribution); err != nil {
		return err
	}

	guarantees, err := experiments.Guarantees(cfg)
	if err != nil {
		return err
	}
	if err := emit("table_guarantees", guarantees); err != nil {
		return err
	}

	resolved := cfg.Jobs
	if resolved <= 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(out, "completed %d simulations (jobs=%d)\n",
		cfg.Obs.Counter("rdt_experiment_runs_total").Value(), resolved)
	return nil
}
