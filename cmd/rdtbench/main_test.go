package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/rdt-go/rdt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigRandomEnvironment 	       2	 512000000 ns/op	         5.261 R(bhmr)	         5.644 R(fdas)
BenchmarkClusterThroughput-8 	  197968	     13526 ns/op	    1576 B/op	       6 allocs/op
BenchmarkObsInstruments/counter 	500000000	         2.145 ns/op
PASS
ok  	github.com/rdt-go/rdt	12.3s
`

func TestParse(t *testing.T) {
	rs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	fig := rs[0]
	if fig.Name != "BenchmarkFigRandomEnvironment" || fig.NsPerOp != 512000000 {
		t.Errorf("figure = %+v", fig)
	}
	if fig.Metrics["R(bhmr)"] != 5.261 || fig.Metrics["R(fdas)"] != 5.644 {
		t.Errorf("custom metrics = %v", fig.Metrics)
	}
	cluster := rs[1]
	if cluster.Name != "BenchmarkClusterThroughput" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", cluster.Name)
	}
	if cluster.AllocsPerOp != 6 || cluster.BytesPerOp != 1576 {
		t.Errorf("memstats = %+v", cluster)
	}
	if rs[2].Name != "BenchmarkObsInstruments/counter" || rs[2].NsPerOp != 2.145 {
		t.Errorf("sub-benchmark = %+v", rs[2])
	}
}

func TestWriteAndCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")

	var out strings.Builder
	if err := run([]string{"-out", path}, strings.NewReader(sample), &out); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("record not written: %v", err)
	}

	// Identical numbers pass the gate.
	out.Reset()
	if err := run([]string{"-baseline", path}, strings.NewReader(sample), &out); err != nil {
		t.Fatalf("identical compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within") {
		t.Errorf("missing summary: %s", out.String())
	}

	// A 10x ns/op regression fails the gate and names the benchmark.
	regressed := strings.Replace(sample, "13526 ns/op", "135260 ns/op", 1)
	out.Reset()
	err := run([]string{"-baseline", path}, strings.NewReader(regressed), &out)
	if err == nil {
		t.Fatal("10x regression passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkClusterThroughput") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}

	// Within tolerance passes: +10% against the default 15%.
	slightly := strings.Replace(sample, "13526 ns/op", "14800 ns/op", 1)
	out.Reset()
	if err := run([]string{"-baseline", path}, strings.NewReader(slightly), &out); err != nil {
		t.Fatalf("+10%% failed the 15%% gate: %v", err)
	}

	// Allocation growth alone never gates.
	allocs := strings.Replace(sample, "6 allocs/op", "600 allocs/op", 1)
	out.Reset()
	if err := run([]string{"-baseline", path}, strings.NewReader(allocs), &out); err != nil {
		t.Fatalf("alloc growth failed the ns/op gate: %v", err)
	}

	// A nanosecond-scale benchmark (2.145 ns/op baseline) is below the
	// default -min-ns floor: even a 10x swing is timer jitter, not a
	// regression.
	jitter := strings.Replace(sample, "2.145 ns/op", "21.45 ns/op", 1)
	out.Reset()
	if err := run([]string{"-baseline", path}, strings.NewReader(jitter), &out); err != nil {
		t.Fatalf("sub-min-ns benchmark gated: %v", err)
	}
	if !strings.Contains(out.String(), "no-gate") {
		t.Errorf("missing no-gate status: %s", out.String())
	}

	// Lowering -min-ns re-enables the gate for it.
	out.Reset()
	if err := run([]string{"-baseline", path, "-min-ns", "1"}, strings.NewReader(jitter), &out); err == nil {
		t.Error("10x regression passed with -min-ns 1")
	}
}

const rateSample = `goos: linux
BenchmarkIngestThroughputStream 	  430798	      3061 ns/op	    326668 events/s
BenchmarkIngestThroughputJSON 	  147804	      8117 ns/op	    123203 events/s
BenchmarkTinyRate 	  10	 1000 ns/op	       12 events/s
BenchmarkNoRate 	  100	 500 ns/op
PASS
`

func TestThroughputMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_9.json")
	var out strings.Builder
	if err := run([]string{"-out", path}, strings.NewReader(rateSample), &out); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Identical rates pass; the rate-less benchmark is skipped silently.
	out.Reset()
	if err := run([]string{"-mode", "throughput", "-baseline", path},
		strings.NewReader(rateSample), &out); err != nil {
		t.Fatalf("identical compare failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "BenchmarkNoRate") {
		t.Errorf("rate-less benchmark leaked into the throughput report:\n%s", out.String())
	}

	// Halving the stream rate fails the gate and names the benchmark.
	slower := strings.Replace(rateSample, "326668 events/s", "160000 events/s", 1)
	out.Reset()
	err := run([]string{"-mode", "throughput", "-baseline", path}, strings.NewReader(slower), &out)
	if err == nil {
		t.Fatal("halved throughput passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkIngestThroughputStream") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}

	// A drop within tolerance passes (-10% against the default 15%).
	slightly := strings.Replace(rateSample, "326668 events/s", "294000 events/s", 1)
	out.Reset()
	if err := run([]string{"-mode", "throughput", "-baseline", path},
		strings.NewReader(slightly), &out); err != nil {
		t.Fatalf("-10%% failed the 15%% gate: %v\n%s", err, out.String())
	}

	// Faster than baseline is fine — the gate is one-sided.
	faster := strings.Replace(rateSample, "326668 events/s", "900000 events/s", 1)
	out.Reset()
	if err := run([]string{"-mode", "throughput", "-baseline", path},
		strings.NewReader(faster), &out); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}

	// A 12 events/s baseline sits under the jitter floor: a collapse
	// there reports no-gate instead of failing.
	tiny := strings.Replace(rateSample, "12 events/s", "1 events/s", 1)
	out.Reset()
	if err := run([]string{"-mode", "throughput", "-baseline", path},
		strings.NewReader(tiny), &out); err != nil {
		t.Fatalf("sub-min-rate benchmark gated: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no-gate") {
		t.Errorf("missing no-gate status:\n%s", out.String())
	}
	// Lowering -min-rate re-enables it.
	out.Reset()
	if err := run([]string{"-mode", "throughput", "-baseline", path, "-min-rate", "1"},
		strings.NewReader(tiny), &out); err == nil {
		t.Error("rate collapse passed with -min-rate 1")
	}

	// ns/op changes never gate in throughput mode.
	nsUp := strings.Replace(rateSample, "3061 ns/op", "306100 ns/op", 1)
	out.Reset()
	if err := run([]string{"-mode", "throughput", "-baseline", path},
		strings.NewReader(nsUp), &out); err != nil {
		t.Fatalf("ns/op growth failed the throughput gate: %v", err)
	}

	// A baseline with no rate metrics at all is a configuration error,
	// not a silent pass.
	out.Reset()
	nsOnlyPath := filepath.Join(dir, "NS.json")
	if err := run([]string{"-out", nsOnlyPath}, strings.NewReader(`BenchmarkNoRate 	  100	 500 ns/op
`), &out); err != nil {
		t.Fatalf("write ns-only: %v", err)
	}
	out.Reset()
	if err := run([]string{"-mode", "throughput", "-baseline", nsOnlyPath},
		strings.NewReader(rateSample), &out); err == nil {
		t.Error("throughput gate with a rate-less baseline passed")
	}

	// Unknown modes are rejected.
	if err := run([]string{"-mode", "sideways", "-baseline", path},
		strings.NewReader(rateSample), &out); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "x.json")},
		strings.NewReader("no benchmarks here"), &out); err == nil {
		t.Error("empty input accepted")
	}
	if err := run([]string{"-baseline", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(sample), &out); err == nil {
		t.Error("missing baseline accepted")
	}
}

// TestParseMergesRepeats: with -count=N, the fastest of the repeated runs
// is kept.
func TestParseMergesRepeats(t *testing.T) {
	input := `BenchmarkX 	100	 500 ns/op	 10 B/op	 2 allocs/op
BenchmarkX 	100	 300 ns/op	 10 B/op	 2 allocs/op
BenchmarkX 	100	 450 ns/op	 10 B/op	 2 allocs/op
`
	rs, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rs) != 1 || rs[0].NsPerOp != 300 {
		t.Fatalf("merged = %+v, want single result at 300 ns/op", rs)
	}
}
