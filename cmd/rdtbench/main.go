// Command rdtbench turns `go test -bench` output into a machine-readable
// benchmark record and gates changes against a committed baseline.
//
// It reads benchmark text from stdin and either writes a JSON record
// (-out) or compares the fresh numbers against a previously written
// record (-baseline), failing when any benchmark's ns/op regressed by
// more than the tolerance (sub-nanosecond-scale benchmarks below -min-ns
// are exempt). In the default mode only ns/op gates: B/op, allocs/op and
// custom metrics (the R values the figure benchmarks report) are
// recorded and printed for context but never fail the run, since the
// repository treats them as tracked observables rather than hard
// budgets.
//
// With -mode throughput the gate flips to the events/s custom metric
// that the ingest benchmarks report (higher is better): a benchmark
// regresses when its fresh rate drops more than the tolerance below the
// baseline rate. Baselines below -min-rate never gate — at tiny rates
// the denominator is a handful of events and scheduling jitter swamps
// any real signal — mirroring what -min-ns does for ns/op.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' . | rdtbench -out results/BENCH_4.json
//	go test -bench . -benchmem -run '^$' . | rdtbench -baseline results/BENCH_4.json -tolerance 0.15
//	go test -bench IngestThroughput -run '^$' . | rdtbench -mode throughput -baseline results/BENCH_9.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/rdt-go/rdt/internal/version"
)

// Result is the parsed record of one benchmark.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the benchmark record written to disk.
type File struct {
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtbench:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("rdtbench", flag.ContinueOnError)
	var (
		outPath   = fs.String("out", "", "write the parsed benchmarks as JSON to this path")
		baseline  = fs.String("baseline", "", "compare against this previously written JSON record")
		mode      = fs.String("mode", "ns", `what gates: "ns" (ns/op, lower is better) or "throughput" (events/s, higher is better)`)
		tolerance = fs.Float64("tolerance", 0.15, "allowed fractional regression before failing")
		minNs     = fs.Float64("min-ns", 100, "ns mode: baselines faster than this never gate (timer jitter dominates)")
		minRate   = fs.Float64("min-rate", 1000, "throughput mode: baselines below this events/s never gate")
		note      = fs.String("note", "", "free-form note stored in the JSON record")

		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(out, "rdtbench %s\n", version.String())
		return nil
	}
	if *outPath == "" && *baseline == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -baseline")
	}
	if *mode != "ns" && *mode != "throughput" {
		return fmt.Errorf("unknown -mode %q (want ns or throughput)", *mode)
	}

	fresh, err := parse(in)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(File{Note: *note, Benchmarks: fresh}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmarks to %s\n", len(fresh), *outPath)
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", *baseline, err)
		}
		if *mode == "throughput" {
			return compareRate(out, base.Benchmarks, fresh, *tolerance, *minRate)
		}
		return compare(out, base.Benchmarks, fresh, *tolerance, *minNs)
	}
	return nil
}

// RateMetric is the custom metric name the throughput gate reads — what
// the ingest benchmarks report via b.ReportMetric.
const RateMetric = "events/s"

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkClusterThroughput-8   197968   13526 ns/op   1576 B/op   6 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse extracts the benchmark results from `go test -bench` output.
// Repeated runs of one benchmark (go test -count=N) are merged by taking
// the line with the lowest ns/op — the run least disturbed by the
// machine's other load — which is what makes the regression gate usable
// on noisy hosts.
func parse(in io.Reader) ([]Result, error) {
	var out []Result
	byName := map[string]int{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		// The tail is (value, unit) pairs.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", r.Name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				// Throughput is derivable from ns/op; skip.
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		if i, seen := byName[r.Name]; seen {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		byName[r.Name] = len(out)
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// compare gates fresh results against the baseline: any benchmark whose
// ns/op grew by more than tolerance fails the run. Benchmarks present on
// only one side are reported but never fail (the suite may grow or
// shrink), and neither do benchmarks whose baseline is under minNs —
// at single- and double-digit nanoseconds, timer resolution and cache
// placement produce relative swings far past any useful tolerance.
func compare(out io.Writer, base, fresh []Result, tolerance, minNs float64) error {
	baseByName := make(map[string]Result, len(base))
	for _, r := range base {
		baseByName[r.Name] = r
	}

	var regressions []string
	for _, f := range fresh {
		b, ok := baseByName[f.Name]
		if !ok {
			fmt.Fprintf(out, "new       %-45s %12.0f ns/op (no baseline)\n", f.Name, f.NsPerOp)
			continue
		}
		delete(baseByName, f.Name)
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (f.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		status := "ok"
		if b.NsPerOp < minNs {
			status = "no-gate"
		} else if delta > tolerance {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
					f.Name, b.NsPerOp, f.NsPerOp, 100*delta, 100*tolerance))
		}
		fmt.Fprintf(out, "%-9s %-45s %12.0f -> %-12.0f ns/op (%+6.1f%%)  allocs %.0f -> %.0f\n",
			status, f.Name, b.NsPerOp, f.NsPerOp, 100*delta, b.AllocsPerOp, f.AllocsPerOp)
	}

	var gone []string
	for name := range baseByName {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(out, "gone      %s (in baseline, not in fresh run)\n", name)
	}

	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance:\n  %s",
			len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "all %d benchmarks within %.0f%% ns/op tolerance\n", len(fresh), 100*tolerance)
	return nil
}

// compareRate is the throughput gate: higher events/s is better, so a
// benchmark regresses when its fresh rate falls more than tolerance
// below the baseline rate. Only benchmarks reporting the events/s metric
// participate; one-sided and sub-min-rate benchmarks are reported but
// never fail, for the same reasons compare gives them.
func compareRate(out io.Writer, base, fresh []Result, tolerance, minRate float64) error {
	baseByName := make(map[string]Result, len(base))
	for _, r := range base {
		if r.Metrics[RateMetric] > 0 {
			baseByName[r.Name] = r
		}
	}

	var regressions []string
	gated := 0
	for _, f := range fresh {
		rate := f.Metrics[RateMetric]
		if rate == 0 {
			continue
		}
		b, ok := baseByName[f.Name]
		if !ok {
			fmt.Fprintf(out, "new       %-45s %12.0f events/s (no baseline)\n", f.Name, rate)
			continue
		}
		delete(baseByName, f.Name)
		gated++
		baseRate := b.Metrics[RateMetric]
		delta := (rate - baseRate) / baseRate
		status := "ok"
		if baseRate < minRate {
			status = "no-gate"
		} else if delta < -tolerance {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f events/s (%+.1f%%, tolerance %.0f%%)",
					f.Name, baseRate, rate, 100*delta, 100*tolerance))
		}
		fmt.Fprintf(out, "%-9s %-45s %12.0f -> %-12.0f events/s (%+6.1f%%)\n",
			status, f.Name, baseRate, rate, 100*delta)
	}

	var gone []string
	for name := range baseByName {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(out, "gone      %s (in baseline, not in fresh run)\n", name)
	}

	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance:\n  %s",
			len(regressions), strings.Join(regressions, "\n  "))
	}
	if gated == 0 {
		return fmt.Errorf("throughput gate matched no benchmarks: no name reporting %q on both sides", RateMetric)
	}
	fmt.Fprintf(out, "all %d throughput benchmarks within %.0f%% events/s tolerance\n", gated, 100*tolerance)
	return nil
}
