package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

// TestRunCheckMetricsMatchReport replays the Figure 1 fixture into the
// observability surface and cross-checks the served counters against
// the printed pattern summary.
func TestRunCheckMetricsMatchReport(t *testing.T) {
	var metricsBody, eventsBody string
	oldHook := metricsServed
	metricsServed = func(addr string) {
		metricsBody = httpGet(t, "http://"+addr+"/metrics")
		eventsBody = httpGet(t, "http://"+addr+"/debug/events")
	}
	defer func() { metricsServed = oldHook }()

	var out bytes.Buffer
	if err := run([]string{"-figure1", "-metrics-addr", "127.0.0.1:0", "-events", "4"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if metricsBody == "" {
		t.Fatal("metricsServed hook never ran")
	}

	var procs, messages, initial, basic, forced, final int
	for _, line := range strings.Split(out.String(), "\n") {
		if _, err := fmt.Sscanf(line, "pattern: %d processes, %d messages, checkpoints: %d initial + %d basic + %d forced + %d final",
			&procs, &messages, &initial, &basic, &forced, &final); err == nil {
			break
		}
	}
	if messages == 0 {
		t.Fatalf("summary parse failed:\n%s", out.String())
	}

	series := make(map[string]int)
	for _, line := range strings.Split(metricsBody, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i > 0 {
			if v, err := strconv.Atoi(line[i+1:]); err == nil {
				series[line[:i]] = v
			}
		}
	}
	if got := series["rdt_check_messages_total"]; got != messages {
		t.Errorf("metrics report %d messages, summary %d", got, messages)
	}
	if got := series[`rdt_check_checkpoints_total{kind="basic"}`]; got != basic {
		t.Errorf("metrics report %d basic, summary %d", got, basic)
	}
	if got := series[`rdt_check_checkpoints_total{kind="forced"}`]; got != forced {
		t.Errorf("metrics report %d forced, summary %d", got, forced)
	}
	if _, ok := series["rdt_check_violations_total"]; !ok {
		t.Error("metrics missing rdt_check_violations_total")
	}

	if !strings.Contains(eventsBody, `"seq"`) {
		t.Errorf("/debug/events returned no events: %s", eventsBody)
	}
	if !strings.Contains(out.String(), "events (last 4 of ") {
		t.Errorf("missing event tail:\n%s", out.String())
	}
}
