package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	rdt "github.com/rdt-go/rdt"
)

func figureFile(t *testing.T) string {
	t.Helper()
	p, err := rdt.Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fig1.json")
	if err := rdt.SaveTraceFile(path, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path
}

func TestCheckFigure1Fixture(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"RDT property: false", "C{2,1} ~> C{0,2}", "consistent with offline"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestCheckExplain(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure1", "-explain"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"RDT property: false", "witness:", "~>"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	// -explain -dot renders the diagram with the witness highlighted.
	out.Reset()
	if err := run([]string{"-figure1", "-explain", "-dot"}, &out); err != nil {
		t.Fatalf("run -dot: %v", err)
	}
	if !strings.Contains(out.String(), "color=red") {
		t.Errorf("witness DOT has no highlighting:\n%s", out.String())
	}
}

func TestCheckVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "rdtcheck dev (unknown)") {
		t.Errorf("unexpected version output %q", out.String())
	}
}

// TestCheckStdin feeds the trace through the "-" argument instead of a
// file and expects the identical analysis.
func TestCheckStdin(t *testing.T) {
	p, err := rdt.Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	var trace bytes.Buffer
	if err := rdt.SaveTrace(&trace, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	oldStdin := stdin
	stdin = &trace
	defer func() { stdin = oldStdin }()

	var out bytes.Buffer
	if err := run([]string{"-"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"RDT property: false", "C{2,1} ~> C{0,2}"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// A second "-" read on exhausted stdin fails loudly, not silently.
	if err := run([]string{"-"}, &out); err == nil {
		t.Error("empty stdin accepted")
	}
}

func TestCheckTraceFileWithQueries(t *testing.T) {
	path := figureFile(t)
	var out bytes.Buffer
	err := run([]string{"-min", "0,2", "-max", "2,1", "-line", "3,3,3", path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"minimum consistent global checkpoint containing C{0,2}: {2,1,1}",
		"maximum consistent global checkpoint containing C{2,1}",
		"recovery line below {3,3,3}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestCheckDOT(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dot", "-figure1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out.String(), "digraph") {
		t.Errorf("not DOT output: %q", out.String()[:20])
	}
}

func TestCheckErrors(t *testing.T) {
	path := figureFile(t)
	tests := [][]string{
		{},                       // no file
		{"a.json", "b.json"},     // too many
		{"missing.json"},         // unreadable
		{"-min", "zzz", path},    // bad checkpoint syntax
		{"-min", "0", path},      // bad checkpoint arity
		{"-min", "0,99", path},   // out of range
		{"-max", "1,x", path},    // bad index
		{"-line", "1,2", path},   // wrong arity
		{"-line", "a,b,c", path}, // non-numeric
		{"-line", "9,9,9", path}, // out of range
		{"-unknown"},             // bad flag
	}
	for _, args := range tests {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCheckASCIIAndUseless(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-ascii", "-useless", "-figure1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "P0 ") || !strings.Contains(text, "s0") {
		t.Errorf("no ASCII diagram:\n%s", text)
	}
	if !strings.Contains(text, "useless checkpoints: 0") {
		t.Errorf("useless summary missing:\n%s", text)
	}
}

// FuzzParseCkpt ensures the checkpoint-argument parser never panics and
// only accepts well-formed proc,index pairs.
func FuzzParseCkpt(f *testing.F) {
	f.Add("0,1")
	f.Add("2,")
	f.Add(",")
	f.Add("a,b")
	f.Add("1,2,3")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := parseCkpt(s)
		if err == nil && (id.Index < -1<<40 || int(id.Proc) < -1<<40) {
			t.Fatalf("nonsense checkpoint accepted: %v", id)
		}
	})
}

// FuzzParseGlobal does the same for the bounds parser.
func FuzzParseGlobal(f *testing.F) {
	f.Add("1,2,3", 3)
	f.Add("", 0)
	f.Add("x", 1)
	f.Fuzz(func(t *testing.T, s string, n int) {
		if n < 0 || n > 64 {
			return
		}
		g, err := parseGlobal(s, n)
		if err == nil && len(g) != n {
			t.Fatalf("wrong arity accepted: %v", g)
		}
	})
}

func TestCheckRGraphDOT(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rdot", "-figure1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out.String(), "digraph rgraph") {
		t.Errorf("not R-graph DOT: %q", out.String()[:30])
	}
}
