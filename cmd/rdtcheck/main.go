// Command rdtcheck analyzes a recorded checkpoint and communication
// pattern (JSON, as written by rdtsim or the runtime): it verifies the
// RDT property, cross-checks recorded dependency vectors, and can compute
// minimum/maximum consistent global checkpoints and recovery lines.
//
// Usage:
//
//	rdtcheck trace.json
//	rdtcheck -min 2,5 -max 2,5 trace.json
//	rdtcheck -line 3,4,2,5 trace.json
//	rdtcheck -dot trace.json > pattern.dot
//	rdtcheck -explain trace.json           # minimal witness per violation
//	rdtcheck -explain -dot trace.json      # diagram with the witness in red
//	rdtcheck -figure1         # analyze the paper's Figure 1 fixture
//	rdtcheck - < trace.json   # read the trace from stdin
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	rdt "github.com/rdt-go/rdt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtcheck:", err)
		os.Exit(1)
	}
}

// metricsServed is a test seam: it runs after all output is printed and
// before the observability server shuts down, with the server's address.
var metricsServed = func(addr string) {}

// stdin is where the "-" trace argument reads from; swapped in tests.
var stdin io.Reader = os.Stdin

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdtcheck", flag.ContinueOnError)
	var (
		minAt       = fs.String("min", "", "compute the minimum consistent global checkpoint containing proc,index")
		maxAt       = fs.String("max", "", "compute the maximum consistent global checkpoint containing proc,index")
		lineAt      = fs.String("line", "", "compute the recovery line below the comma-separated per-process bounds")
		dot         = fs.Bool("dot", false, "emit the pattern as Graphviz DOT instead of analyzing it")
		rdot        = fs.Bool("rdot", false, "emit the rollback-dependency graph as Graphviz DOT instead of analyzing it")
		ascii       = fs.Bool("ascii", false, "also print the pattern as an ASCII space-time diagram")
		useless     = fs.Bool("useless", false, "also list useless checkpoints (requires the O(M²) chain closure)")
		fig1        = fs.Bool("figure1", false, "analyze the built-in Figure 1 fixture instead of a file")
		maxViol     = fs.Int("violations", 10, "maximum RDT violations to list")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics, /debug/events, and /debug/vars for the analyzed pattern on this address (:0 picks a port)")
		events      = fs.Int("events", 0, "print the last N replayed events after the analysis")
		explain     = fs.Bool("explain", false, "derive a minimal witness chain for every RDT violation (with -dot, highlight the first witness in the diagram)")
		pprof       = fs.Bool("pprof", false, "also mount /debug/pprof and runtime gauges on the -metrics-addr server")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(out, "rdtcheck %s (%s)\n", rdt.BuildVersion, rdt.BuildCommit)
		return nil
	}

	var (
		p   *rdt.Pattern
		err error
	)
	switch {
	case *fig1:
		p, err = rdt.Figure1()
	case fs.NArg() == 1 && fs.Arg(0) == "-":
		p, err = rdt.LoadTrace(stdin)
	case fs.NArg() == 1:
		p, err = rdt.LoadTraceFile(fs.Arg(0))
	default:
		return fmt.Errorf("expected exactly one trace file, \"-\" for stdin, or -figure1; got %d args", fs.NArg())
	}
	if err != nil {
		return err
	}

	if *dot {
		if *explain {
			// Highlight the first violation's witness chain in the diagram;
			// a trackable pattern degrades to the plain diagram.
			_, witnesses, err := rdt.ExplainRDT(p, *maxViol)
			if err != nil {
				return err
			}
			if len(witnesses) > 0 {
				w := witnesses[0]
				fmt.Fprint(out, p.DOTWitness(w.MessageIDs(), w.Violation.From, w.Violation.To))
				return nil
			}
		}
		fmt.Fprint(out, p.DOT())
		return nil
	}
	if *rdot {
		g, err := rdt.BuildRGraph(p)
		if err != nil {
			return err
		}
		fmt.Fprint(out, g.DOT())
		return nil
	}
	if *ascii {
		fmt.Fprint(out, p.ASCII())
	}

	s := p.Stats()
	fmt.Fprintf(out, "pattern: %d processes, %d messages, checkpoints: %d initial + %d basic + %d forced + %d final\n",
		s.Processes, s.Messages, s.Initial, s.Basic, s.Forced, s.Final)

	report, err := rdt.CheckRDT(p, *maxViol)
	if err != nil {
		return err
	}

	if *metricsAddr != "" || *events > 0 {
		reg := rdt.NewMetricsRegistry()
		tracer := rdt.NewEventTracer(rdt.DefaultEventCapacity)
		replayPattern(reg, tracer, p, len(report.Violations))
		if *metricsAddr != "" {
			var opts []rdt.ObsServerOption
			if *pprof {
				opts = append(opts, rdt.WithProfiling())
			}
			srv, err := rdt.ServeObs(*metricsAddr, reg, tracer, opts...)
			if err != nil {
				return err
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_ = srv.Shutdown(ctx)
			}()
			fmt.Fprintf(out, "metrics: http://%s/metrics events: http://%s/debug/events\n", srv.Addr(), srv.Addr())
			defer func() { metricsServed(srv.Addr()) }()
		}
		defer printEvents(out, tracer, *events)
	}
	fmt.Fprintf(out, "RDT property: %v (%d/%d rollback dependencies trackable)\n",
		report.RDT, report.TrackablePairs, report.RPathPairs)
	for _, v := range report.Violations {
		fmt.Fprintf(out, "  violation: %v\n", v)
	}
	if *explain && len(report.Violations) > 0 {
		explainer, err := rdt.NewWitnessExplainer(p)
		if err != nil {
			return err
		}
		witnesses, err := explainer.ExplainAll(report.Violations)
		if err != nil {
			return err
		}
		for _, w := range witnesses {
			fmt.Fprintf(out, "  witness: %v\n", w)
		}
	}

	if err := rdt.VerifyRecordedTDVs(p); err != nil {
		fmt.Fprintf(out, "recorded dependency vectors: MISMATCH: %v\n", err)
	} else {
		fmt.Fprintln(out, "recorded dependency vectors: consistent with offline recomputation")
	}

	if *useless {
		chains, err := rdt.NewChains(p)
		if err != nil {
			return err
		}
		count := 0
		for i := 0; i < p.N; i++ {
			for x := 0; x <= p.LastIndex(rdt.ProcID(i)); x++ {
				id := rdt.CkptID{Proc: rdt.ProcID(i), Index: x}
				if chains.Useless(id) {
					fmt.Fprintf(out, "useless checkpoint: %v (on a zigzag cycle)\n", id)
					count++
				}
			}
		}
		fmt.Fprintf(out, "useless checkpoints: %d\n", count)
	}

	if *minAt != "" {
		id, err := parseCkpt(*minAt)
		if err != nil {
			return err
		}
		g, err := rdt.MinConsistentGlobal(p, id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "minimum consistent global checkpoint containing %v: %v\n", id, g)
	}
	if *maxAt != "" {
		id, err := parseCkpt(*maxAt)
		if err != nil {
			return err
		}
		g, err := rdt.MaxConsistentGlobal(p, id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "maximum consistent global checkpoint containing %v: %v\n", id, g)
	}
	if *lineAt != "" {
		bounds, err := parseGlobal(*lineAt, p.N)
		if err != nil {
			return err
		}
		line, err := rdt.TraceRecoveryLine(p, bounds)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "recovery line below %v: %v\n", bounds, line)
	}
	return nil
}

// replayPattern projects an offline pattern into the observability
// model: each checkpoint and message becomes the structured event and
// counter increment the live runtime would have recorded, so the same
// /metrics and /debug/events surface works on archived traces.
func replayPattern(reg *rdt.MetricsRegistry, tracer *rdt.EventTracer, p *rdt.Pattern, violations int) {
	basic := reg.Counter("rdt_check_checkpoints_total", "kind", "basic")
	forced := reg.Counter("rdt_check_checkpoints_total", "kind", "forced")
	for _, cs := range p.Checkpoints {
		for i := range cs {
			cp := &cs[i]
			switch cp.Kind {
			case rdt.KindBasic:
				basic.Inc()
				tracer.Record(rdt.TraceEvent{
					Type: rdt.EventBasicCheckpoint, Proc: int(cp.Proc), Value: cp.Index,
				})
			case rdt.KindForced:
				forced.Inc()
				tracer.Record(rdt.TraceEvent{
					Type: rdt.EventForcedCheckpoint, Proc: int(cp.Proc), Value: cp.Index,
				})
			}
		}
	}
	messages := reg.Counter("rdt_check_messages_total")
	for _, m := range p.Messages {
		messages.Inc()
		tracer.Record(rdt.TraceEvent{
			Type: rdt.EventSend, Proc: int(m.From), Peer: int(m.To), Value: m.ID,
		})
		tracer.Record(rdt.TraceEvent{
			Type: rdt.EventDeliver, Proc: int(m.To), Peer: int(m.From), Value: m.ID,
		})
	}
	reg.Counter("rdt_check_violations_total").Add(int64(violations))
}

// printEvents writes the tail of the replayed event trace, oldest first.
func printEvents(out io.Writer, tracer *rdt.EventTracer, n int) {
	if tracer == nil || n <= 0 {
		return
	}
	tail := tracer.Tail(n)
	fmt.Fprintf(out, "events (last %d of %d replayed):\n", len(tail), tracer.Seq())
	for _, ev := range tail {
		fmt.Fprintf(out, "  #%-8d %-17s proc=%d", ev.Seq, ev.Type, ev.Proc)
		if ev.Type == rdt.EventSend || ev.Type == rdt.EventDeliver {
			fmt.Fprintf(out, " peer=%d", ev.Peer)
		}
		fmt.Fprintf(out, " value=%d\n", ev.Value)
	}
}

// parseCkpt parses "proc,index".
func parseCkpt(s string) (rdt.CkptID, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return rdt.CkptID{}, fmt.Errorf("checkpoint %q: want proc,index", s)
	}
	proc, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return rdt.CkptID{}, fmt.Errorf("checkpoint %q: %w", s, err)
	}
	index, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return rdt.CkptID{}, fmt.Errorf("checkpoint %q: %w", s, err)
	}
	return rdt.CkptID{Proc: rdt.ProcID(proc), Index: index}, nil
}

// parseGlobal parses "x0,x1,...,xn-1".
func parseGlobal(s string, n int) (rdt.GlobalCheckpoint, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("bounds %q: want %d comma-separated indexes", s, n)
	}
	g := make(rdt.GlobalCheckpoint, n)
	for i, part := range parts {
		x, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bounds %q: %w", s, err)
		}
		g[i] = x
	}
	return g, nil
}
