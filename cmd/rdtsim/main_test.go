package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rdt "github.com/rdt-go/rdt"
)

func TestRunSimAndWriteTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	err := run([]string{
		"-protocol", "bhmr", "-workload", "ring", "-n", "4",
		"-duration", "60", "-trace", tracePath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"protocol=bhmr", "messages", "RDT property", "true", "trace written"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	p, err := rdt.LoadTraceFile(tracePath)
	if err != nil {
		t.Fatalf("trace unreadable: %v", err)
	}
	if p.N != 4 {
		t.Errorf("trace N = %d", p.N)
	}
}

func TestRunSimTraceOut(t *testing.T) {
	timelinePath := filepath.Join(t.TempDir(), "timeline.json")
	var out bytes.Buffer
	err := run([]string{
		"-protocol", "bhmr", "-workload", "ring", "-n", "4",
		"-duration", "60", "-trace-out", timelinePath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "timeline written") {
		t.Errorf("output missing timeline notice:\n%s", out.String())
	}
	data, err := os.ReadFile(timelinePath)
	if err != nil {
		t.Fatalf("timeline unreadable: %v", err)
	}
	if !bytes.Contains(data, []byte(`"traceEvents"`)) || !bytes.Contains(data, []byte(`"cat":"rdt"`)) {
		t.Errorf("timeline is not Chrome trace-event JSON:\n%.200s", data)
	}

	// Modes without a single recorded pattern reject the flag up front.
	if err := run([]string{"-protocol", "all", "-trace-out", timelinePath}, &out); err == nil {
		t.Error("-trace-out with -protocol all should fail")
	}
}

func TestRunSimVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "rdtsim dev (unknown)") {
		t.Errorf("unexpected version output %q", out.String())
	}
}

func TestRunSimNoCheck(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-check=false", "-duration", "30", "-n", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "RDT property") {
		t.Error("check ran although disabled")
	}
}

func TestRunSimErrors(t *testing.T) {
	tests := [][]string{
		{"-protocol", "bogus"},
		{"-workload", "bogus"},
		{"-n", "1"},
		{"-duration", "0"},
		{"-nonexistent-flag"},
	}
	for _, args := range tests {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSimTraceWriteFailure(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-duration", "30", "-n", "3", "-trace", filepath.Join(t.TempDir(), "no", "dir", "x.json")}, &out)
	if err == nil {
		t.Error("unwritable trace path accepted")
	}
	if _, statErr := os.Stat("x.json"); statErr == nil {
		t.Error("stray trace file created")
	}
}

func TestRunSimReplicated(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-seeds", "3", "-duration", "40", "-n", "3", "-workload", "ring"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "seeds=1..3") || !strings.Contains(text, "95% CI") {
		t.Errorf("replicated output malformed:\n%s", text)
	}
}

func TestRunSimCompareAll(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "all", "-duration", "40", "-n", "4"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, proto := range []string{"none", "bcs", "bhmr", "fdas", "cas"} {
		if !strings.Contains(text, proto) {
			t.Errorf("comparison missing %q:\n%s", proto, text)
		}
	}
}

func TestParseFaults(t *testing.T) {
	p, err := parseFaults("drop=0.1,dup=0.2,reorder=0.3,err=0.05,delay=4ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if p.Drop != 0.1 || p.Duplicate != 0.2 || p.Reorder != 0.3 || p.SendError != 0.05 {
		t.Errorf("probs = %+v", p)
	}
	if p.MaxExtraDelay.Milliseconds() != 4 {
		t.Errorf("delay = %v", p.MaxExtraDelay)
	}
	for _, bad := range []string{"drop", "drop=x", "drop=1.5", "warp=0.1", "delay=fast"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRunChaosMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-protocol", "bhmr", "-n", "4", "-rounds", "6", "-seed", "7",
		"-faults", "drop=0.15,dup=0.15,reorder=0.2,err=0.05,delay=2ms",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"chaos run", "messages sent", "send retries",
		"exactly-once", "RDT property", "true",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunChaosModeErrors(t *testing.T) {
	tests := [][]string{
		{"-faults", "drop=2"},
		{"-faults", "drop=0.1", "-protocol", "all"},
		{"-faults", "drop=0.1", "-protocol", "bogus"},
		{"-faults", "drop=0.1", "-n", "1"},
	}
	for _, args := range tests {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunChaosSuperviseMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-protocol", "bhmr", "-n", "4", "-rounds", "8", "-seed", "7", "-supervise",
		"-faults", "drop=0.15,dup=0.15,reorder=0.2,err=0.05,delay=2ms",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"supervised run", "injected crash", "self-healed", "incarnation 2",
		"reason=crash", "recoveries ok", "RDT property", "true",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunChaosSuperviseWithoutFaults(t *testing.T) {
	// -supervise alone runs the supervised cluster over a clean link.
	var out bytes.Buffer
	err := run([]string{"-n", "3", "-rounds", "4", "-seed", "3", "-supervise"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "self-healed") {
		t.Errorf("output missing %q:\n%s", "self-healed", out.String())
	}
}

func TestRunChaosSuperviseErrors(t *testing.T) {
	tests := [][]string{
		{"-supervise", "-protocol", "all"},
		{"-supervise", "-n", "1"},
		{"-supervise", "-faults", "drop=2"},
	}
	for _, args := range tests {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
