// Command rdtsim runs one simulation of a communication-induced
// checkpointing protocol in a chosen communication environment and
// reports the checkpointing overhead. It can also write the recorded
// checkpoint and communication pattern as JSON for offline analysis with
// rdtcheck.
//
// Usage:
//
//	rdtsim -protocol bhmr -workload client-server -n 8 -duration 1000 \
//	       -basic 10 -seed 1 -trace out.json
//
// -trace-out additionally writes the run's causal timeline as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto:
//
//	rdtsim -protocol bhmr -n 4 -trace-out timeline.json
//
// With -faults, rdtsim instead drives the concurrent cluster runtime over
// a fault-injected transport with reliable delivery on top:
//
//	rdtsim -protocol bhmr -n 4 -rounds 20 -seed 7 \
//	       -faults drop=0.1,dup=0.1,reorder=0.15,err=0.05,delay=2ms
//
// Adding -supervise puts the cluster under a heartbeat failure detector
// with autonomous recovery: a seeded victim is crashed mid-run and the
// supervisor must detect it and bring up the next incarnation on its own:
//
//	rdtsim -protocol bhmr -n 4 -rounds 20 -seed 7 -supervise \
//	       -faults drop=0.1,dup=0.1,reorder=0.15,err=0.05,delay=2ms
//
// With -scenario, rdtsim executes a .rdts chaos-scenario file — a
// scripted schedule of traffic, partitions, disconnects, crashes, and
// recoveries at virtual timestamps — deterministically under a virtual
// clock, and fails if any of the file's expectations are violated:
//
//	rdtsim -scenario ring-under-drops.rdts -transcript
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	rdt "github.com/rdt-go/rdt"
	"github.com/rdt-go/rdt/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtsim:", err)
		os.Exit(1)
	}
}

// metricsServed is a test seam: it runs after all output is printed and
// before the observability server shuts down, with the server's address.
var metricsServed = func(addr string) {}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdtsim", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "bhmr", "checkpointing protocol ('all' for a comparison): "+strings.Join(rdt.ProtocolNames(), ", "))
		env         = fs.String("workload", "random", "communication environment: "+strings.Join(rdt.WorkloadNames(), ", "))
		n           = fs.Int("n", 8, "number of processes")
		duration    = fs.Float64("duration", 1000, "simulated time horizon")
		basic       = fs.Float64("basic", 10, "mean interval between basic checkpoints")
		seed        = fs.Int64("seed", 1, "random seed")
		seeds       = fs.Int("seeds", 1, "number of replications (seed, seed+1, ...); with more than one, report mean and 95% CI of R")
		tracePath   = fs.String("trace", "", "write the recorded pattern to this JSON file")
		check       = fs.Bool("check", true, "verify the RDT property of the recorded pattern")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics, /debug/events, and /debug/vars on this address (:0 picks a port)")
		events      = fs.Int("events", 0, "print the last N structured events after the run")
		faults      = fs.String("faults", "", "run the cluster runtime under fault injection with this mix, e.g. drop=0.05,dup=0.05,reorder=0.1,err=0.02,delay=3ms")
		rounds      = fs.Int("rounds", 10, "send rounds of the -faults chaos mode")
		supervise   = fs.Bool("supervise", false, "run the cluster runtime under a supervisor: a seeded crash is injected mid-run and must be detected and healed autonomously (combines with -faults)")
		traceOut    = fs.String("trace-out", "", "write the run's causal timeline as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
		pprof       = fs.Bool("pprof", false, "also mount /debug/pprof and runtime gauges on the -metrics-addr server")
		scenarioIn  = fs.String("scenario", "", "execute a .rdts chaos scenario file deterministically under a virtual clock and check its expectations")
		transcript  = fs.Bool("transcript", false, "with -scenario, print the run's deterministic transcript")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(out, "rdtsim %s (%s)\n", rdt.BuildVersion, rdt.BuildCommit)
		return nil
	}
	if *scenarioIn != "" {
		return runScenario(out, *scenarioIn, *transcript)
	}
	if *transcript {
		return fmt.Errorf("-transcript needs -scenario")
	}

	var (
		reg    *rdt.MetricsRegistry
		tracer *rdt.EventTracer
	)
	if *metricsAddr != "" || *events > 0 {
		reg = rdt.NewMetricsRegistry()
		tracer = rdt.NewEventTracer(rdt.DefaultEventCapacity)
	}
	if *metricsAddr != "" {
		var opts []rdt.ObsServerOption
		if *pprof {
			opts = append(opts, rdt.WithProfiling())
		}
		srv, err := rdt.ServeObs(*metricsAddr, reg, tracer, opts...)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Fprintf(out, "metrics: http://%s/metrics events: http://%s/debug/events\n", srv.Addr(), srv.Addr())
		defer func() { metricsServed(srv.Addr()) }()
	}
	defer printEvents(out, tracer, *events)

	if *traceOut != "" && (*faults != "" || *supervise || *protocol == "all" || *seeds > 1) {
		return fmt.Errorf("-trace-out needs the single recorded pattern of one simulation run")
	}
	if *faults != "" || *supervise {
		probs, err := parseFaults(*faults)
		if err != nil {
			return err
		}
		if *protocol == "all" {
			return fmt.Errorf("-faults and -supervise run one protocol at a time")
		}
		kind, err := rdt.ParseProtocol(*protocol)
		if err != nil {
			return err
		}
		if *supervise {
			return runSupervised(out, kind, *n, *rounds, probs, *seed, *check, reg, tracer)
		}
		return runChaos(out, kind, *n, *rounds, probs, *seed, *check, reg, tracer)
	}
	if *protocol == "all" {
		return compareAll(out, *env, *n, *duration, *basic, *seed, reg, tracer)
	}
	kind, err := rdt.ParseProtocol(*protocol)
	if err != nil {
		return err
	}
	w, err := rdt.WorkloadByName(*env)
	if err != nil {
		return err
	}
	cfg := rdt.DefaultSimConfig(kind, *seed)
	cfg.N = *n
	cfg.Duration = *duration
	cfg.BasicMean = *basic
	cfg.Obs = reg
	cfg.Tracer = tracer

	if *seeds > 1 {
		return replicate(out, cfg, *env, *seeds)
	}

	res, err := rdt.Simulate(cfg, w)
	if err != nil {
		return err
	}
	s := res.Stats
	fmt.Fprintf(out, "protocol=%v workload=%s n=%d duration=%g seed=%d\n", kind, *env, *n, *duration, *seed)
	fmt.Fprintf(out, "messages           %8d\n", s.Messages)
	fmt.Fprintf(out, "basic checkpoints  %8d\n", s.Basic)
	fmt.Fprintf(out, "forced checkpoints %8d\n", s.Forced)
	fmt.Fprintf(out, "R = forced/basic   %8.4f\n", s.ForcedPerBasic())
	fmt.Fprintf(out, "forced/message     %8.4f\n", s.ForcedPerMessage())
	fmt.Fprintf(out, "piggyback          %8d bytes/message\n", res.WireBytesPerMessage)

	if *check {
		report, err := rdt.CheckRDT(res.Pattern, 5)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "RDT property       %8v (%d/%d dependencies trackable)\n",
			report.RDT, report.TrackablePairs, report.RPathPairs)
		for _, v := range report.Violations {
			fmt.Fprintf(out, "  violation: %v\n", v)
		}
	}

	if *tracePath != "" {
		if err := rdt.SaveTraceFile(*tracePath, res.Pattern); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s\n", *tracePath)
	}
	if *traceOut != "" {
		if err := writeTimelineFile(*traceOut, res.Pattern); err != nil {
			return err
		}
		fmt.Fprintf(out, "timeline written to %s\n", *traceOut)
	}
	return nil
}

// runScenario executes one .rdts chaos scenario and reports its
// outcome; violated expectations make the command fail.
func runScenario(out io.Writer, path string, transcript bool) error {
	sc, err := rdt.ParseChaosFile(path)
	if err != nil {
		return err
	}
	res, err := rdt.RunChaos(sc)
	if err != nil {
		return err
	}
	if transcript {
		fmt.Fprint(out, res.Transcript)
	}
	fmt.Fprintf(out, "scenario=%s verdict=%s delivered=%d lost=%d sim=%v\n",
		res.Name, res.Verdict, res.Delivered, res.Lost, res.SimTime)
	if len(res.Recovered) > 0 {
		fmt.Fprintf(out, "recovered=%v\n", res.Recovered)
	}
	if res.Line != nil {
		fmt.Fprintf(out, "recovery line=%v\n", res.Line)
	}
	if !res.Passed() {
		for _, f := range res.Failures {
			fmt.Fprintf(out, "expectation failed: %s\n", f)
		}
		return fmt.Errorf("scenario %s: %d expectation(s) failed", res.Name, len(res.Failures))
	}
	fmt.Fprintln(out, "all expectations held")
	return nil
}

// writeTimelineFile renders the pattern's logical causal timeline as
// Chrome trace-event JSON.
func writeTimelineFile(path string, p *rdt.Pattern) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rdt.WritePatternTimeline(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printEvents writes the tail of the structured event trace, oldest
// first. A nil tracer or n <= 0 prints nothing.
func printEvents(out io.Writer, tracer *rdt.EventTracer, n int) {
	if tracer == nil || n <= 0 {
		return
	}
	tail := tracer.Tail(n)
	fmt.Fprintf(out, "events (last %d of %d recorded):\n", len(tail), tracer.Seq())
	for _, ev := range tail {
		fmt.Fprintf(out, "  #%-8d %-17s proc=%d", ev.Seq, ev.Type, ev.Proc)
		if ev.Type == rdt.EventSend || ev.Type == rdt.EventDeliver || ev.Type == rdt.EventSendError {
			fmt.Fprintf(out, " peer=%d", ev.Peer)
		}
		if ev.Predicate != "" {
			fmt.Fprintf(out, " predicate=%s", ev.Predicate)
		}
		if ev.Detail != "" {
			fmt.Fprintf(out, " detail=%q", ev.Detail)
		}
		fmt.Fprintf(out, " value=%d\n", ev.Value)
	}
}

// replicate runs the configuration over consecutive seeds and reports the
// sampling distribution of the overhead ratio.
func replicate(out io.Writer, cfg rdt.SimConfig, env string, seeds int) error {
	var rs, fpm stats.Sample
	for k := 0; k < seeds; k++ {
		w, err := rdt.WorkloadByName(env)
		if err != nil {
			return err
		}
		run := cfg
		run.Seed = cfg.Seed + int64(k)
		res, err := rdt.Simulate(run, w)
		if err != nil {
			return err
		}
		rs = append(rs, res.Stats.ForcedPerBasic())
		fpm = append(fpm, res.Stats.ForcedPerMessage())
	}
	fmt.Fprintf(out, "protocol=%v workload=%s n=%d duration=%g seeds=%d..%d\n",
		cfg.Protocol, env, cfg.N, cfg.Duration, cfg.Seed, cfg.Seed+int64(seeds)-1)
	fmt.Fprintf(out, "R = forced/basic   %8.4f ± %.4f (95%% CI), min %.4f max %.4f\n",
		rs.Mean(), rs.CI95(), rs.Min(), rs.Max())
	fmt.Fprintf(out, "forced/message     %8.4f ± %.4f (95%% CI)\n", fpm.Mean(), fpm.CI95())
	return nil
}

// compareAll runs every protocol on the same workload and seed and prints
// a comparison table. All runs share the registry and tracer (may be
// nil), with series distinguished by their protocol label.
func compareAll(out io.Writer, env string, n int, duration, basic float64, seed int64, reg *rdt.MetricsRegistry, tracer *rdt.EventTracer) error {
	fmt.Fprintf(out, "workload=%s n=%d duration=%g basic=%g seed=%d\n", env, n, duration, basic, seed)
	fmt.Fprintf(out, "%-8s %9s %9s %9s %9s %10s %6s\n",
		"protocol", "messages", "basic", "forced", "R=f/b", "piggyback", "RDT")
	for _, kind := range rdt.Protocols() {
		w, err := rdt.WorkloadByName(env)
		if err != nil {
			return err
		}
		cfg := rdt.DefaultSimConfig(kind, seed)
		cfg.N = n
		cfg.Duration = duration
		cfg.BasicMean = basic
		cfg.Obs = reg
		cfg.Tracer = tracer
		res, err := rdt.Simulate(cfg, w)
		if err != nil {
			return err
		}
		report, err := rdt.CheckRDT(res.Pattern, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-8v %9d %9d %9d %9.3f %10d %6v\n",
			kind, res.Stats.Messages, res.Stats.Basic, res.Stats.Forced,
			res.Stats.ForcedPerBasic(), res.WireBytesPerMessage, report.RDT)
	}
	return nil
}
