package main

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	rdt "github.com/rdt-go/rdt"
)

// parseFaults turns a "-faults" spec like
//
//	drop=0.05,dup=0.05,reorder=0.1,err=0.02,delay=3ms
//
// into a fault mix. Keys may appear in any order; omitted ones are zero.
func parseFaults(spec string) (rdt.FaultProbs, error) {
	var p rdt.FaultProbs
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("faults: %q is not key=value", field)
		}
		if key == "delay" {
			d, err := time.ParseDuration(val)
			if err != nil {
				return p, fmt.Errorf("faults: delay: %w", err)
			}
			p.MaxExtraDelay = d
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return p, fmt.Errorf("faults: %s: %w", key, err)
		}
		if f < 0 || f > 1 {
			return p, fmt.Errorf("faults: %s=%g outside [0,1]", key, f)
		}
		switch key {
		case "drop":
			p.Drop = f
		case "dup":
			p.Duplicate = f
		case "reorder":
			p.Reorder = f
		case "err":
			p.SendError = f
		default:
			return p, fmt.Errorf("faults: unknown key %q (want drop, dup, reorder, err, delay)", key)
		}
	}
	return p, nil
}

// runChaos executes the concurrent cluster runtime (not the discrete-event
// simulator) over a fault-injected transport with the reliable delivery
// layer on top, and reports delivery accounting, injected faults, retry
// work, and the RDT verdict of the recorded pattern.
func runChaos(out io.Writer, kind rdt.Protocol, n, rounds int, probs rdt.FaultProbs, seed int64, check bool, reg *rdt.MetricsRegistry, tracer *rdt.EventTracer) error {
	if n < 2 {
		return fmt.Errorf("chaos: need at least 2 processes, have %d", n)
	}
	if reg == nil {
		reg = rdt.NewMetricsRegistry() // accounting below needs the counters
	}
	faulty := rdt.WithFaults(rdt.NewLocalTransport(time.Millisecond), rdt.FaultConfig{
		Seed:    seed,
		Default: probs,
		Obs:     reg,
		Tracer:  tracer,
	})
	rel := rdt.Reliable(faulty, rdt.ReliableConfig{
		Seed:       seed,
		MaxRetries: 100,
		Backoff:    time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		Obs:        reg,
		Tracer:     tracer,
	})

	var mu sync.Mutex
	delivered := make(map[string]int)
	c, err := rdt.NewCluster(rdt.ClusterConfig{
		N:         n,
		Protocol:  kind,
		Transport: rel,
		Obs:       reg,
		Tracer:    tracer,
		Handler: func(_ *rdt.Node, _ int, payload []byte) {
			mu.Lock()
			delivered[string(payload)]++
			mu.Unlock()
		},
	})
	if err != nil {
		return err
	}

	sent := 0
	for round := 0; round < rounds; round++ {
		for proc := 0; proc < n; proc++ {
			for _, to := range []int{(proc + 1) % n, (proc + 2) % n} {
				if to == proc {
					continue
				}
				payload := []byte{byte(round), byte(round >> 8), byte(proc), byte(to)}
				if err := c.Node(proc).Send(to, payload); err != nil {
					return fmt.Errorf("chaos: send: %w", err)
				}
				sent++
			}
		}
		if err := c.Node(round % n).Checkpoint(); err != nil {
			return fmt.Errorf("chaos: checkpoint: %w", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	quiesceErr := c.QuiesceCtx(ctx)
	pattern, lost, err := c.StopLossy(context.Background())
	if err != nil {
		return fmt.Errorf("chaos: stop: %w", err)
	}

	mu.Lock()
	exactlyOnce := len(lost) == 0
	duplicates := 0
	for _, count := range delivered {
		if count != 1 {
			exactlyOnce = false
			if count > 1 {
				duplicates += count - 1
			}
		}
	}
	distinct := len(delivered)
	mu.Unlock()

	fmt.Fprintf(out, "chaos run: protocol=%v n=%d rounds=%d seed=%d\n", kind, n, rounds, seed)
	fmt.Fprintf(out, "faults: drop=%g dup=%g reorder=%g err=%g delay=%v\n",
		probs.Drop, probs.Duplicate, probs.Reorder, probs.SendError, probs.MaxExtraDelay)
	fmt.Fprintf(out, "messages sent      %8d\n", sent)
	fmt.Fprintf(out, "distinct delivered %8d (duplicate deliveries: %d, lost: %d)\n", distinct, duplicates, len(lost))
	for kind, count := range faulty.Injected() {
		fmt.Fprintf(out, "injected %-10s%8d\n", kind, count)
	}
	fmt.Fprintf(out, "send retries       %8d\n", reg.Counter("rdt_send_retries_total").Value())
	fmt.Fprintf(out, "give-ups           %8d\n", reg.Counter("rdt_reliable_giveups_total").Value())
	if quiesceErr != nil {
		fmt.Fprintf(out, "quiesce            timed out: %v\n", quiesceErr)
	}
	if exactlyOnce {
		fmt.Fprintf(out, "delivery           exactly-once: every message delivered once\n")
	} else {
		fmt.Fprintf(out, "delivery           DEGRADED: loss or duplication observed\n")
	}

	if check {
		report, err := rdt.CheckRDT(pattern, 5)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "RDT property       %8v (%d/%d dependencies trackable)\n",
			report.RDT, report.TrackablePairs, report.RPathPairs)
		for _, v := range report.Violations {
			fmt.Fprintf(out, "  violation: %v\n", v)
		}
	}
	return nil
}
