package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.rdts")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScenarioFlag(t *testing.T) {
	path := writeScenario(t, `
scenario cli-ring
procs 3
protocol bhmr
seed 4
at 0ms  traffic ring rounds=2
at 20ms settle
expect verdict rdt
expect min-delivered 6
`)
	var out bytes.Buffer
	if err := run([]string{"-scenario", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"scenario=cli-ring", "verdict=rdt", "all expectations held"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunScenarioTranscript(t *testing.T) {
	path := writeScenario(t, `
scenario cli-transcript
procs 2
seed 2
at 0ms send 0 1
at 5ms settle
`)
	run1, run2 := new(bytes.Buffer), new(bytes.Buffer)
	if err := run([]string{"-scenario", path, "-transcript"}, run1); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-scenario", path, "-transcript"}, run2); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if run1.String() != run2.String() {
		t.Fatalf("transcript output not deterministic:\n%s\n---\n%s", run1, run2)
	}
	if !strings.Contains(run1.String(), "deliver 1<-0") {
		t.Errorf("transcript missing delivery line:\n%s", run1)
	}
}

func TestRunScenarioExpectationFailure(t *testing.T) {
	path := writeScenario(t, `
scenario cli-fails
procs 3
protocol bhmr
seed 4
at 0ms traffic ring rounds=1
at 20ms settle
expect verdict violation
`)
	var out bytes.Buffer
	err := run([]string{"-scenario", path}, &out)
	if err == nil {
		t.Fatalf("expected failure, got success:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "expectation") {
		t.Errorf("error %q does not mention expectations", err)
	}
	if !strings.Contains(out.String(), "expectation failed: verdict") {
		t.Errorf("output missing failure detail:\n%s", out.String())
	}
}

func TestRunScenarioErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", filepath.Join(t.TempDir(), "missing.rdts")}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-transcript"}, &out); err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Errorf("bare -transcript: %v", err)
	}
	bad := writeScenario(t, "scenario x\nprocs 2\nat 0ms fly 1\n")
	if err := run([]string{"-scenario", bad}, &out); err == nil {
		t.Error("malformed scenario accepted")
	}
}
