package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// httpGet fetches a URL and returns the body, failing the test on error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

// promValues parses a Prometheus text exposition into series -> value,
// keeping only integral-valued samples (counters and gauges).
func promValues(body string) map[string]int {
	out := make(map[string]int)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.Atoi(line[i+1:])
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// TestRunSimMetricsMatchReport is the acceptance check of the
// observability surface: a comparison run serving /metrics must report
// exactly the same per-protocol message, basic-, and forced-checkpoint
// counts as the printed table, and the per-predicate forced-checkpoint
// attribution must sum to the forced total.
func TestRunSimMetricsMatchReport(t *testing.T) {
	var metricsBody, eventsBody string
	oldHook := metricsServed
	metricsServed = func(addr string) {
		metricsBody = httpGet(t, "http://"+addr+"/metrics")
		eventsBody = httpGet(t, "http://"+addr+"/debug/events")
	}
	defer func() { metricsServed = oldHook }()

	var out bytes.Buffer
	err := run([]string{
		"-protocol", "all", "-metrics-addr", "127.0.0.1:0",
		"-workload", "ring", "-n", "4", "-duration", "40",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if metricsBody == "" {
		t.Fatal("metricsServed hook never ran")
	}
	if !strings.Contains(out.String(), "metrics: http://") {
		t.Errorf("serving address not announced:\n%s", out.String())
	}

	series := promValues(metricsBody)

	// Parse the comparison table: protocol, messages, basic, forced, ...
	type row struct{ messages, basic, forced int }
	reported := make(map[string]row)
	for _, line := range strings.Split(out.String(), "\n") {
		f := strings.Fields(line)
		if len(f) != 7 || f[0] == "protocol" || strings.ContainsRune(f[0], '=') {
			continue
		}
		var r row
		var err error
		if r.messages, err = strconv.Atoi(f[1]); err != nil {
			continue
		}
		if r.basic, err = strconv.Atoi(f[2]); err != nil {
			continue
		}
		if r.forced, err = strconv.Atoi(f[3]); err != nil {
			continue
		}
		reported[f[0]] = r
	}
	if len(reported) < 5 {
		t.Fatalf("parsed only %d table rows:\n%s", len(reported), out.String())
	}

	for proto, r := range reported {
		get := func(series map[string]int, key string) int {
			v, ok := series[key]
			if !ok {
				t.Errorf("metrics missing series %s", key)
			}
			return v
		}
		if got := get(series, fmt.Sprintf(`rdt_sim_messages_total{protocol=%q}`, proto)); got != r.messages {
			t.Errorf("%s: metrics report %d messages, table %d", proto, got, r.messages)
		}
		if got := get(series, fmt.Sprintf(`rdt_checkpoints_total{kind="basic",protocol=%q}`, proto)); got != r.basic {
			t.Errorf("%s: metrics report %d basic, table %d", proto, got, r.basic)
		}
		if got := get(series, fmt.Sprintf(`rdt_checkpoints_total{kind="forced",protocol=%q}`, proto)); got != r.forced {
			t.Errorf("%s: metrics report %d forced, table %d", proto, got, r.forced)
		}

		// Predicate attribution must be complete: the per-predicate
		// series of a protocol sum to its forced total.
		attributed := 0
		for key, v := range series {
			if strings.HasPrefix(key, "rdt_forced_checkpoints_total{") &&
				strings.Contains(key, fmt.Sprintf("protocol=%q", proto)) {
				attributed += v
			}
		}
		if attributed != r.forced {
			t.Errorf("%s: predicate attribution sums to %d, forced total is %d", proto, attributed, r.forced)
		}
	}

	if !strings.Contains(eventsBody, `"seq"`) {
		t.Errorf("/debug/events returned no events: %s", eventsBody)
	}
}

// TestRunSimSingleMetricsMatchReport checks the single-run path: the
// served checkpoint counters equal the printed report's.
func TestRunSimSingleMetricsMatchReport(t *testing.T) {
	var metricsBody string
	oldHook := metricsServed
	metricsServed = func(addr string) { metricsBody = httpGet(t, "http://"+addr+"/metrics") }
	defer func() { metricsServed = oldHook }()

	var out bytes.Buffer
	err := run([]string{
		"-protocol", "bhmr", "-metrics-addr", "127.0.0.1:0",
		"-workload", "ring", "-n", "4", "-duration", "60",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var basic, forced int
	for _, line := range strings.Split(out.String(), "\n") {
		fmt.Sscanf(line, "basic checkpoints %d", &basic)
		fmt.Sscanf(line, "forced checkpoints %d", &forced)
	}
	if basic == 0 || forced == 0 {
		t.Fatalf("report parse failed (basic=%d forced=%d):\n%s", basic, forced, out.String())
	}
	series := promValues(metricsBody)
	if got := series[`rdt_checkpoints_total{kind="basic",protocol="bhmr"}`]; got != basic {
		t.Errorf("metrics basic = %d, report %d", got, basic)
	}
	if got := series[`rdt_checkpoints_total{kind="forced",protocol="bhmr"}`]; got != forced {
		t.Errorf("metrics forced = %d, report %d", got, forced)
	}
}

// TestRunSimEvents checks the -events tail printing without a server.
func TestRunSimEvents(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-protocol", "bhmr", "-events", "5",
		"-workload", "ring", "-n", "4", "-duration", "60",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "events (last 5 of ") {
		t.Errorf("missing event tail header:\n%s", text)
	}
	if !strings.Contains(text, "proc=") {
		t.Errorf("missing event lines:\n%s", text)
	}
}
