package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	rdt "github.com/rdt-go/rdt"
)

// runSupervised drives the cluster runtime under supervision: the same
// chaos stack as runChaos, plus a heartbeat failure detector and an
// autonomous recovery driver. A seeded victim is crashed mid-run; the
// run only proceeds once the supervisor has detected the failure and
// brought up incarnation 2 on its own, and the report covers both
// incarnations plus the supervisor's accounting.
func runSupervised(out io.Writer, kind rdt.Protocol, n, rounds int, probs rdt.FaultProbs, seed int64, check bool, reg *rdt.MetricsRegistry, tracer *rdt.EventTracer) error {
	if n < 2 {
		return fmt.Errorf("supervise: need at least 2 processes, have %d", n)
	}
	if reg == nil {
		reg = rdt.NewMetricsRegistry()
	}
	stack := func(transportSeed int64) rdt.Transport {
		faulty := rdt.WithFaults(rdt.NewLocalTransport(time.Millisecond), rdt.FaultConfig{
			Seed:    transportSeed,
			Default: probs,
			Obs:     reg,
			Tracer:  tracer,
		})
		return rdt.Reliable(faulty, rdt.ReliableConfig{
			Seed:       transportSeed,
			MaxRetries: 100,
			Backoff:    time.Millisecond,
			MaxBackoff: 10 * time.Millisecond,
			Obs:        reg,
			Tracer:     tracer,
		})
	}

	c1, err := rdt.NewCluster(rdt.ClusterConfig{
		N:           n,
		Protocol:    kind,
		Transport:   stack(seed),
		LogPayloads: true,
		Obs:         reg,
		Tracer:      tracer,
	})
	if err != nil {
		return err
	}
	recovered := make(chan *rdt.RecoverResult, 1)
	escalated := make(chan error, 1)
	sup, err := rdt.Supervise(c1, rdt.SupervisorConfig{
		Interval: 2 * time.Millisecond,
		Seed:     seed,
		Options: func(incarnation, attempt int) rdt.RecoverOptions {
			return rdt.RecoverOptions{
				Store:     rdt.NewMemoryStore(),
				Transport: stack(seed + 1000*int64(incarnation) + int64(attempt)),
			}
		},
		OnRecover:  func(res *rdt.RecoverResult) { recovered <- res },
		OnEscalate: func(err error) { escalated <- err },
	})
	if err != nil {
		return err
	}
	defer sup.Stop()

	traffic := func(c *rdt.Cluster, from, to int) (int, error) {
		sent := 0
		for round := from; round < to; round++ {
			for proc := 0; proc < n; proc++ {
				dest := (proc + 1 + round%(n-1)) % n
				payload := []byte{byte(round), byte(round >> 8), byte(proc), byte(dest)}
				if err := c.Node(proc).Send(dest, payload); err != nil {
					return sent, fmt.Errorf("supervise: send: %w", err)
				}
				sent++
			}
			if err := c.Node(round % n).Checkpoint(); err != nil {
				return sent, fmt.Errorf("supervise: checkpoint: %w", err)
			}
		}
		return sent, nil
	}

	half := rounds / 2
	sent1, err := traffic(c1, 0, half)
	if err != nil {
		return err
	}
	c1.Quiesce()

	// The injected failure: a seeded victim fail-stops, as an external
	// fault would kill it. Everything after this line is the supervisor's
	// doing — no manual Recover anywhere.
	victim := rand.New(rand.NewSource(seed)).Intn(n)
	if err := c1.Node(victim).Crash(); err != nil {
		return fmt.Errorf("supervise: inject crash: %w", err)
	}
	fmt.Fprintf(out, "supervised run: protocol=%v n=%d rounds=%d seed=%d\n", kind, n, rounds, seed)
	fmt.Fprintf(out, "faults: drop=%g dup=%g reorder=%g err=%g delay=%v\n",
		probs.Drop, probs.Duplicate, probs.Reorder, probs.SendError, probs.MaxExtraDelay)
	fmt.Fprintf(out, "injected crash     P%d after %d sends\n", victim, sent1)

	var res *rdt.RecoverResult
	select {
	case res = <-recovered:
	case err := <-escalated:
		return fmt.Errorf("supervise: escalated: %w", err)
	case <-time.After(time.Minute):
		return fmt.Errorf("supervise: no autonomous recovery within 1m")
	}
	c2 := sup.Cluster()
	fmt.Fprintf(out, "self-healed        incarnation %d up, %d messages replayed, rollback depth %d\n",
		sup.Incarnation(), len(res.Replayed), res.Plan.TotalRollback())

	sent2, err := traffic(c2, half, rounds)
	if err != nil {
		return err
	}
	c2.Quiesce()
	sup.Stop()
	pattern2, err := c2.Stop()
	if err != nil {
		return fmt.Errorf("supervise: stop: %w", err)
	}

	fmt.Fprintf(out, "messages sent      %8d (incarnation 1) + %d (incarnation 2)\n", sent1, sent2)
	fmt.Fprintf(out, "incarnation 2      %8d delivered (replay + fresh traffic)\n", len(pattern2.Messages))
	for _, reason := range []string{rdt.SuspectCrash, rdt.SuspectTimeout, rdt.SuspectUnreachable} {
		if v := reg.Counter("rdt_supervisor_suspicions_total", "reason", reason).Value(); v > 0 {
			fmt.Fprintf(out, "suspicions         %8d reason=%s\n", v, reason)
		}
	}
	fmt.Fprintf(out, "recoveries ok      %8d (retries: %d)\n",
		reg.Counter("rdt_supervisor_recoveries_total", "outcome", "ok").Value(),
		reg.Counter("rdt_supervisor_recoveries_total", "outcome", "retry").Value())

	if check {
		report, err := rdt.CheckRDT(pattern2, 5)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "RDT property       %8v (%d/%d dependencies trackable)\n",
			report.RDT, report.TrackablePairs, report.RPathPairs)
		for _, v := range report.Violations {
			fmt.Fprintf(out, "  violation: %v\n", v)
		}
	}
	return nil
}
