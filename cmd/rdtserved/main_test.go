package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/service"
)

// startDaemon runs the daemon with an ephemeral port and returns its
// base URL, a cancel function standing in for SIGTERM, and a waiter for
// the exit error.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	prev := serving
	serving = func(a string) { addrCh <- a }
	t.Cleanup(func() { serving = prev })

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard) }()

	select {
	case addr := <-addrCh:
		return "http://" + addr, cancel, func() error { return <-errCh }
	case err := <-errCh:
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not bind in time")
	}
	panic("unreachable")
}

func postJSON(base, path string, body any, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %q: %w", data, err)
		}
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	return resp.StatusCode, nil
}

func getJSON(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}

// driveSession streams a deterministic pseudo-random run into one
// session — mirroring every event into a local Builder — then checks
// the flushed verdict and the sealed verdict against the batch checker
// on the mirrored pattern.
func driveSession(base, id string, n int, seed int64, steps int) error {
	if _, err := postJSON(base, "/v1/sessions", map[string]any{"id": id, "n": n}, nil); err != nil {
		return fmt.Errorf("create: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	mirror := model.NewBuilder(n)
	handles := map[int]int{}
	nextMsg := 0
	var inFlight []int
	var pending []service.Event

	ship := func() error {
		if len(pending) == 0 {
			return nil
		}
		for {
			code, err := postJSON(base, "/v1/sessions/"+id+"/events", pending, nil)
			if code == http.StatusTooManyRequests {
				time.Sleep(5 * time.Millisecond) // honor the backpressure
				continue
			}
			if err != nil {
				return fmt.Errorf("ingest: %w", err)
			}
			pending = nil
			return nil
		}
	}

	for s := 0; s < steps; s++ {
		switch k := rng.Intn(10); {
		case k < 4:
			proc := rng.Intn(n)
			pending = append(pending, service.Event{Op: service.OpCheckpoint, Proc: proc})
			mirror.Checkpoint(model.ProcID(proc), model.KindBasic, nil)
		case k < 8 || len(inFlight) == 0:
			from := rng.Intn(n)
			to := rng.Intn(n - 1)
			if to >= from {
				to++
			}
			msg := nextMsg
			nextMsg++
			pending = append(pending, service.Event{Op: service.OpSend, Proc: from, Peer: to, Msg: msg})
			handles[msg] = mirror.Send(model.ProcID(from), model.ProcID(to))
			inFlight = append(inFlight, msg)
		default:
			i := rng.Intn(len(inFlight))
			msg := inFlight[i]
			inFlight = append(inFlight[:i], inFlight[i+1:]...)
			pending = append(pending, service.Event{Op: service.OpDeliver, Msg: msg})
			if err := mirror.Deliver(handles[msg]); err != nil {
				return fmt.Errorf("mirror deliver: %w", err)
			}
		}
		if len(pending) >= 1+rng.Intn(8) {
			if err := ship(); err != nil {
				return err
			}
		}
	}
	if err := ship(); err != nil {
		return err
	}

	p, _, err := mirror.Snapshot()
	if err != nil {
		return fmt.Errorf("mirror snapshot: %w", err)
	}
	rep, err := rgraph.CheckRDT(p, service.DefaultMaxViolations)
	if err != nil {
		return fmt.Errorf("batch check: %w", err)
	}

	var v service.Verdict
	if err := getJSON(base, "/v1/sessions/"+id+"/verdict?flush=1", &v); err != nil {
		return fmt.Errorf("verdict: %w", err)
	}
	if err := matchVerdict(&v, rep); err != nil {
		return fmt.Errorf("live verdict: %w", err)
	}
	var sealed service.Verdict
	if _, err := postJSON(base, "/v1/sessions/"+id+"/seal", nil, &sealed); err != nil {
		return fmt.Errorf("seal: %w", err)
	}
	if err := matchVerdict(&sealed, rep); err != nil {
		return fmt.Errorf("sealed verdict: %w", err)
	}
	return nil
}

func matchVerdict(v *service.Verdict, rep *rgraph.Report) error {
	if v.RDT != rep.RDT || v.RPathPairs != rep.RPathPairs || v.TrackablePairs != rep.TrackablePairs {
		return fmt.Errorf("verdict (rdt=%v pairs=%d/%d) != batch (rdt=%v pairs=%d/%d)",
			v.RDT, v.TrackablePairs, v.RPathPairs, rep.RDT, rep.TrackablePairs, rep.RPathPairs)
	}
	if len(rep.Violations) > 0 {
		if v.FirstViolation == nil {
			return fmt.Errorf("batch reports %v first, verdict reports none", rep.Violations[0])
		}
		want := rep.Violations[0]
		got := *v.FirstViolation
		if got.From.Proc != int(want.From.Proc) || got.From.Index != want.From.Index ||
			got.To.Proc != int(want.To.Proc) || got.To.Index != want.To.Index {
			return fmt.Errorf("first violation %+v, batch says %v", got, want)
		}
	}
	return nil
}

// TestServeSmoke drives one session end-to-end through a real daemon:
// create, ingest, verdict, recovery line, trace dump, seal, and a clean
// SIGTERM-style drain.
func TestServeSmoke(t *testing.T) {
	base, cancel, wait := startDaemon(t)

	if err := driveSession(base, "smoke", 3, 0x5eed, 120); err != nil {
		t.Fatal(err)
	}
	var line struct {
		Line   []int `json:"line"`
		Bounds []int `json:"bounds"`
	}
	if err := getJSON(base, "/v1/sessions/smoke/line", &line); err != nil {
		t.Fatalf("line: %v", err)
	}
	if len(line.Line) != 3 || len(line.Bounds) != 3 {
		t.Fatalf("line response %+v", line)
	}
	for i := range line.Line {
		if line.Line[i] > line.Bounds[i] {
			t.Fatalf("line %v above bounds %v", line.Line, line.Bounds)
		}
	}
	resp, err := http.Get(base + "/v1/sessions/smoke/trace")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"checkpoints"`)) {
		t.Fatalf("trace: %d (%.80s)", resp.StatusCode, data)
	}

	cancel()
	if err := wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// TestServeSmokeConcurrent runs many sessions ingesting in parallel —
// the CI serve-smoke job executes this under -race, so shard locking,
// queue handoff, and metrics all get exercised concurrently.
func TestServeSmokeConcurrent(t *testing.T) {
	const sessions = 20
	base, cancel, wait := startDaemon(t)

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSession(base, fmt.Sprintf("w%d", i), 2+i%4, int64(i)*7919, 150); err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if err := getJSON(base, "/healthz", &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Sessions != sessions {
		t.Fatalf("healthz reports %d sessions, want %d", health.Sessions, sessions)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(data, []byte("rdt_service_events_ingested_total")) {
		t.Fatalf("metrics output lacks service counters: %.120s", data)
	}

	cancel()
	if err := wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// syncBuffer lets the test goroutine read daemon output written from
// the run goroutine without a data race.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeProfilingListener boots the daemon with -pprof-addr and
// checks that the separate profiling listener serves the pprof index
// while the API listener does not expose it.
func TestServeProfilingListener(t *testing.T) {
	addrCh := make(chan string, 1)
	prev := serving
	serving = func(a string) { addrCh <- a }
	t.Cleanup(func() { serving = prev })

	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0"}, &out)
	}()

	var apiAddr string
	select {
	case apiAddr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not bind in time")
	}

	// Both startup lines are printed before the serving seam fires.
	m := regexp.MustCompile(`profiling on (http://[^/\s]+)/debug/pprof/`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no profiling line in output:\n%s", out.String())
	}
	resp, err := http.Get(m[1] + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + apiAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("api pprof probe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("API listener exposes /debug/pprof/; profiling should stay on its own address")
	}

	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// startDaemonOut is startDaemon with captured output, for tests that
// assert on the daemon's log lines.
func startDaemonOut(t *testing.T, out io.Writer, args ...string) (string, context.CancelFunc, func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	prev := serving
	serving = func(a string) { addrCh <- a }
	t.Cleanup(func() { serving = prev })

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	select {
	case addr := <-addrCh:
		return "http://" + addr, cancel, func() error { return <-errCh }
	case err := <-errCh:
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not bind in time")
	}
	panic("unreachable")
}

// TestServeDurableRestart is the daemon-level drain/restart cycle: a
// SIGTERM-style drain passivates every session with a final snapshot,
// so the restarted daemon logs a recovery with zero replayed records
// and answers identical verdicts — sealed sessions stay sealed, open
// sessions keep ingesting.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	base, cancel, wait := startDaemon(t, "-data-dir", dir, "-snapshot-every", "8")

	// One sealed session (driveSession seals at the end)...
	if err := driveSession(base, "sealed", 3, 0xd00d, 90); err != nil {
		t.Fatal(err)
	}
	// ...and one left open mid-run.
	if _, err := postJSON(base, "/v1/sessions", map[string]any{"id": "open", "n": 2}, nil); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := postJSON(base, "/v1/sessions/open/events", []service.Event{
		{Op: service.OpSend, Proc: 0, Peer: 1, Msg: 0},
		{Op: service.OpDeliver, Msg: 0},
		{Op: service.OpCheckpoint, Proc: 1},
	}, nil); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	var sealedBefore, openBefore service.Verdict
	if err := getJSON(base, "/v1/sessions/sealed/verdict?flush=1", &sealedBefore); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	if err := getJSON(base, "/v1/sessions/open/verdict?flush=1", &openBefore); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	cancel()
	if err := wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}

	var out syncBuffer
	base2, cancel2, wait2 := startDaemonOut(t, &out, "-data-dir", dir, "-snapshot-every", "8")
	if m := regexp.MustCompile(`recovered 2 sessions .* \(0 records / 0 events replayed`).FindString(out.String()); m == "" {
		t.Fatalf("recovery line missing or replayed records after a clean drain:\n%s", out.String())
	}
	var sealedAfter, openAfter service.Verdict
	if err := getJSON(base2, "/v1/sessions/sealed/verdict", &sealedAfter); err != nil {
		t.Fatalf("verdict after restart: %v", err)
	}
	if err := getJSON(base2, "/v1/sessions/open/verdict", &openAfter); err != nil {
		t.Fatalf("verdict after restart: %v", err)
	}
	sealedBefore.Session, sealedAfter.Session = "", ""
	openBefore.Session, openAfter.Session = "", ""
	for _, pair := range []struct {
		name          string
		before, after service.Verdict
	}{{"sealed", sealedBefore, sealedAfter}, {"open", openBefore, openAfter}} {
		b, _ := json.Marshal(pair.before)
		a, _ := json.Marshal(pair.after)
		if !bytes.Equal(a, b) {
			t.Errorf("%s verdict changed across restart:\n  before %s\n  after  %s", pair.name, b, a)
		}
	}
	if sealedAfter.State != "sealed" {
		t.Errorf("sealed session state %q after restart", sealedAfter.State)
	}
	// The open session keeps ingesting after the restart.
	if _, err := postJSON(base2, "/v1/sessions/open/events", []service.Event{
		{Op: service.OpCheckpoint, Proc: 0},
	}, nil); err != nil {
		t.Fatalf("ingest after restart: %v", err)
	}
	var openMore service.Verdict
	if err := getJSON(base2, "/v1/sessions/open/verdict?flush=1", &openMore); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	if openMore.EventsApplied != openAfter.EventsApplied+1 {
		t.Fatalf("events applied %d, want %d", openMore.EventsApplied, openAfter.EventsApplied+1)
	}
	cancel2()
	if err := wait2(); err != nil {
		t.Fatalf("second daemon exit: %v", err)
	}
}

func TestServeVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "rdtserved dev (unknown)") {
		t.Errorf("unexpected version output %q", out.String())
	}
}

// TestRunRejectsArgs covers flag handling without starting a listener.
func TestRunRejectsArgs(t *testing.T) {
	if err := run(context.Background(), []string{"extra"}, io.Discard); err == nil {
		t.Fatal("positional arguments accepted")
	}
	if err := run(context.Background(), []string{"-addr"}, io.Discard); err == nil {
		t.Fatal("dangling flag accepted")
	}
}
