package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/stream"
)

// startDaemonStream is startDaemon with the binary stream listener
// enabled; it returns the HTTP base URL and the stream address.
func startDaemonStream(t *testing.T, args ...string) (base, streamAddr string, cancel context.CancelFunc, wait func() error) {
	t.Helper()
	streamCh := make(chan string, 1)
	prev := servingStream
	servingStream = func(a string) { streamCh <- a }
	t.Cleanup(func() { servingStream = prev })

	base, cancel, wait = startDaemon(t, append([]string{"-stream-addr", "127.0.0.1:0"}, args...)...)
	select {
	case a := <-streamCh:
		return base, a, cancel, wait
	case <-time.After(10 * time.Second):
		t.Fatal("stream listener did not bind in time")
	}
	panic("unreachable")
}

// trafficBatches materializes one deterministic traffic run as a batch
// list, so the same events can be shipped over either wire.
func trafficBatches(t *testing.T, shape string, n, events, batchSize int, seed int64) [][]service.Event {
	t.Helper()
	tr, err := stream.NewTraffic(shape, n, seed)
	if err != nil {
		t.Fatalf("traffic: %v", err)
	}
	var out [][]service.Event
	for sent := 0; sent < events; {
		c := batchSize
		if events-sent < c {
			c = events - sent
		}
		out = append(out, tr.Next(nil, c))
		sent += c
	}
	return out
}

// jsonDrive ships the batches over the JSON API and seals.
func jsonDrive(base, id string, n int, batches [][]service.Event) error {
	if _, err := postJSON(base, "/v1/sessions", map[string]any{"id": id, "n": n}, nil); err != nil {
		return fmt.Errorf("create: %w", err)
	}
	for i, b := range batches {
		for {
			code, err := postJSON(base, "/v1/sessions/"+id+"/events", b, nil)
			if code == http.StatusTooManyRequests {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if err != nil {
				return fmt.Errorf("batch %d: %w", i, err)
			}
			break
		}
	}
	if _, err := postJSON(base, "/v1/sessions/"+id+"/seal", nil, nil); err != nil {
		return fmt.Errorf("seal: %w", err)
	}
	return nil
}

// streamDrive ships the batches over the binary wire and seals.
func streamDrive(addr, id string, n int, batches [][]service.Event) error {
	c, err := stream.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	ch, err := c.Open(id, n, "differential")
	if err != nil {
		return err
	}
	for i, b := range batches {
		if err := ch.Send(b); err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
	}
	if err := ch.Seal(); err != nil {
		return fmt.Errorf("seal: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return ch.Flush(ctx)
}

// normalizedDoc fetches one session document and canonicalizes it: the
// session id (the one intended difference between the twins) is
// stripped, and re-marshaling through a map sorts the keys.
func normalizedDoc(base, id, suffix string) (string, error) {
	resp, err := http.Get(base + "/v1/sessions/" + id + suffix)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d: %s", suffix, resp.StatusCode, data)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", fmt.Errorf("GET %s: decode %q: %w", suffix, data, err)
	}
	delete(doc, "session")
	delete(doc, "id")
	canon, err := json.Marshal(doc)
	if err != nil {
		return "", err
	}
	return string(canon), nil
}

// diffDocs demands bit-identical verdicts, recovery lines, and witness
// explanations between a JSON-fed and a stream-fed session.
func diffDocs(t *testing.T, base, jsonID, streamID string) {
	t.Helper()
	for _, suffix := range []string{"/verdict?flush=1", "/line", "/explain"} {
		j, err := normalizedDoc(base, jsonID, suffix)
		if err != nil {
			t.Fatalf("json twin %s: %v", suffix, err)
		}
		s, err := normalizedDoc(base, streamID, suffix)
		if err != nil {
			t.Fatalf("stream twin %s: %v", suffix, err)
		}
		if j != s {
			t.Errorf("%s diverged between wires:\njson:   %s\nstream: %s", suffix, j, s)
		}
	}
}

// TestStreamJSONDifferential feeds the same seeded traffic through the
// JSON API and the binary stream and demands that every observable
// document — verdict, recovery line, witness explanation — comes out
// bit-identical. The wire must be a transport, never a semantic.
func TestStreamJSONDifferential(t *testing.T) {
	base, streamAddr, cancel, wait := startDaemonStream(t)
	defer func() {
		cancel()
		if err := wait(); err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	}()

	for _, tc := range []struct {
		shape string
		n     int
		seed  int64
	}{
		{"random", 6, 0xbeef},
		{"ring", 4, 0x1dea},
		{"client-server", 5, 0xcafe},
	} {
		batches := trafficBatches(t, tc.shape, tc.n, 1500, 64, tc.seed)
		jsonID := "diff-json-" + tc.shape
		streamID := "diff-stream-" + tc.shape
		if err := jsonDrive(base, jsonID, tc.n, batches); err != nil {
			t.Fatalf("%s: json drive: %v", tc.shape, err)
		}
		if err := streamDrive(streamAddr, streamID, tc.n, batches); err != nil {
			t.Fatalf("%s: stream drive: %v", tc.shape, err)
		}
		diffDocs(t, base, jsonID, streamID)
	}
}

// TestStreamReconnectReplay drops the connection mid-window — batches
// sent but not yet acked — reconnects, rewinds to sequence 1, and
// resends the entire run. Sequence dedup must discard every batch the
// first connection already delivered, so the session still applies each
// event exactly once and stays bit-identical to its JSON twin.
func TestStreamReconnectReplay(t *testing.T) {
	base, streamAddr, cancel, wait := startDaemonStream(t)
	defer func() {
		cancel()
		if err := wait(); err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	}()

	const n = 5
	batches := trafficBatches(t, "random", n, 2000, 50, 0xd0d0)
	total := 0
	for _, b := range batches {
		total += len(b)
	}

	if err := jsonDrive(base, "replay-json", n, batches); err != nil {
		t.Fatalf("json drive: %v", err)
	}

	// First connection: settle the first half, then fire the rest into
	// the window and yank the connection without waiting for acks.
	c1, err := stream.Dial(streamAddr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	ch1, err := c1.Open("replay-stream", n, "differential")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	half := len(batches) / 2
	for i, b := range batches[:half] {
		if err := ch1.Send(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	ctx, cancelFlush := context.WithTimeout(context.Background(), 30*time.Second)
	if err := ch1.Flush(ctx); err != nil {
		t.Fatalf("flush first half: %v", err)
	}
	cancelFlush()
	for i, b := range batches[half:] {
		if err := ch1.Send(b); err != nil {
			t.Fatalf("batch %d: %v", half+i, err)
		}
	}
	if unacked := ch1.Unacked(); len(unacked) == 0 {
		t.Log("note: every batch was acked before the drop; replay still exercises dedup")
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("abrupt close: %v", err)
	}

	// Second connection: the server reports its high-water sequence via
	// the channel's resume point; rewinding to 1 and resending the whole
	// run makes the prefix a pure duplicate replay.
	c2, err := stream.Dial(streamAddr)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer c2.Close()
	ch2, err := c2.Open("replay-stream", n, "differential")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if ch2.Next == 1 {
		t.Fatal("server accepted nothing before the drop; the replay would not test dedup")
	}
	if err := ch2.Rewind(1); err != nil {
		t.Fatalf("rewind: %v", err)
	}
	for i, b := range batches {
		if err := ch2.Send(b); err != nil {
			t.Fatalf("replay batch %d: %v", i, err)
		}
	}
	if err := ch2.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := ch2.Flush(ctx2); err != nil {
		t.Fatalf("flush replay: %v", err)
	}

	var v service.Verdict
	if err := getJSON(base, "/v1/sessions/replay-stream/verdict", &v); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	// Sealing closes each process's final checkpoint but applies no wire
	// events, so EventsApplied counts exactly the traffic — once.
	if v.EventsApplied != int64(total) {
		t.Fatalf("EventsApplied = %d after replay, want %d (dedup failed?)", v.EventsApplied, total)
	}
	diffDocs(t, base, "replay-json", "replay-stream")
}
