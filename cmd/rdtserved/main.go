// Command rdtserved serves the multi-session RDT checking service: a
// long-running daemon accepting streaming checkpoint/send/deliver
// events from many concurrent client sessions and answering live RDT
// verdicts, recovery-line queries, and pattern dumps over HTTP/JSON.
//
// Usage:
//
//	rdtserved -addr :8080
//
// Drive it with curl:
//
//	curl -X POST localhost:8080/v1/sessions -d '{"id":"run1","n":3}'
//	curl -X POST localhost:8080/v1/sessions/run1/events \
//	     -d '[{"op":"send","proc":0,"peer":1,"msg":0},
//	          {"op":"deliver","msg":0},
//	          {"op":"checkpoint","proc":1}]'
//	curl 'localhost:8080/v1/sessions/run1/verdict?flush=1'
//	curl localhost:8080/v1/sessions/run1/trace | rdtcheck -
//
// SIGINT/SIGTERM drains gracefully: the listener closes, acknowledged
// events are applied, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"net/http"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/shard"
	"github.com/rdt-go/rdt/internal/stream"
	"github.com/rdt-go/rdt/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtserved:", err)
		os.Exit(1)
	}
}

// serving is a test seam: it runs once the listener is bound, with the
// bound address.
var serving = func(addr string) {}

// servingStream is the same seam for the binary stream listener.
var servingStream = func(addr string) {}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdtserved", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "HTTP listen address (:0 picks a port)")
		queue     = fs.Int("queue", service.DefaultQueueDepth, "per-session ingestion queue depth, in batches")
		shards    = fs.Int("shards", service.DefaultShards, "session-map shards")
		maxBatch  = fs.Int("max-batch", service.DefaultMaxBatch, "maximum events per ingest request")
		maxCkpts  = fs.Int("max-checkpoints", service.DefaultMaxCheckpoints, "maximum checkpoints per session")
		maxViol   = fs.Int("violations", service.DefaultMaxViolations, "default violations listed per verdict")
		idle      = fs.Duration("idle-timeout", 30*time.Minute, "evict sessions untouched this long (0 disables)")
		sweep     = fs.Duration("sweep-interval", service.DefaultSweepInterval, "idle-eviction sweep period")
		drain     = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget")
		events    = fs.Int("events", obs.DefaultTracerCapacity, "violation/rollback trace ring capacity")
		dataDir   = fs.String("data-dir", "", "durable session state directory: WAL + snapshots per session, crash recovery on start (empty disables durability)")
		snapEvery = fs.Int("snapshot-every", service.DefaultSnapshotEvery, "events between session snapshots (with -data-dir)")

		streamAddr  = fs.String("stream-addr", "", "binary streaming ingest (RDTSTRM1) listen address (:0 picks a port; empty disables)")
		streamFrame = fs.Int("stream-max-frame", stream.DefaultMaxFrame, "maximum stream frame payload, in bytes")
		streamWin   = fs.Int("stream-window", stream.DefaultWindow, "per-channel stream credit window, in events")

		shardSelf    = fs.String("shard-self", "", "this daemon's cluster member name (enables shard mode; requires -data-dir)")
		shardMembers = fs.String("shard-members", "", "static membership seed: name=HTTPADDR[+STREAMADDR],... (adopted as ring epoch 1; empty waits for a config push)")
		shardVNodes  = fs.Int("shard-vnodes", shard.DefaultVNodes, "virtual nodes per member on the consistent-hash ring")

		pprofAddr   = fs.String("pprof-addr", "", "serve /debug/pprof and runtime gauges on this extra address (:0 picks a port; empty disables profiling)")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(out, "rdtserved %s\n", version.String())
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	svc, err := service.New(service.Config{
		Shards:         *shards,
		QueueDepth:     *queue,
		MaxBatch:       *maxBatch,
		MaxCheckpoints: *maxCkpts,
		MaxViolations:  *maxViol,
		IdleTimeout:    *idle,
		SweepInterval:  *sweep,
		DataDir:        *dataDir,
		SnapshotEvery:  *snapEvery,
		Registry:       obs.NewRegistry(),
		Tracer:         obs.NewTracer(*events),
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		// Recovery runs before the listener binds, so the first request
		// already sees every persisted session.
		start := time.Now()
		stats, err := svc.Recover()
		if err != nil {
			return fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		fmt.Fprintf(out,
			"rdtserved: recovered %d sessions from %s in %s (%d records / %d events replayed, %d WAL tails truncated, %d snapshots quarantined, %d sessions quarantined)\n",
			stats.Sessions, *dataDir, time.Since(start).Round(time.Millisecond),
			stats.Records, stats.Events, stats.Truncations,
			stats.QuarantinedSnapshots, stats.QuarantinedSessions)
	}
	var node *shard.Node
	handler := service.NewHandler(svc)
	if *shardSelf != "" {
		node, err = shard.NewNode(shard.NodeConfig{
			Self:     *shardSelf,
			Service:  svc,
			Registry: svc.Config().Registry,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(out, "rdtserved: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		node.Register(mux)
		mux.Handle("/", handler)
		handler = mux
		if *shardMembers != "" {
			members, err := shard.ParseMembers(*shardMembers)
			if err != nil {
				return err
			}
			ring, err := shard.New(1, *shardVNodes, members)
			if err != nil {
				return err
			}
			if _, err := node.AdoptRing(ring); err != nil {
				return err
			}
		}
	} else if *shardMembers != "" {
		return fmt.Errorf("-shard-members requires -shard-self")
	}
	srv, err := service.ServeHandler(*addr, handler)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rdtserved: listening on %s (metrics: http://%s/metrics)\n", srv.Addr(), srv.Addr())
	if node != nil {
		fmt.Fprintf(out, "rdtserved: shard member %q\n", *shardSelf)
	}
	var strmSrv *stream.Server
	if *streamAddr != "" {
		strmSrv, err = stream.Serve(*streamAddr, stream.Config{
			Service:  svc,
			Registry: svc.Config().Registry,
			MaxFrame: *streamFrame,
			Window:   *streamWin,
		})
		if err != nil {
			_ = srv.Close()
			return err
		}
		fmt.Fprintf(out, "rdtserved: stream ingest on %s\n", strmSrv.Addr())
		servingStream(strmSrv.Addr())
	}
	if *pprofAddr != "" {
		// Profiling lives on its own listener so the API address can stay
		// exposed while pprof stays private.
		psrv, err := obs.Serve(*pprofAddr, nil, nil, obs.WithProfiling())
		if err != nil {
			return err
		}
		defer psrv.Close() //nolint:errcheck
		fmt.Fprintf(out, "rdtserved: profiling on http://%s/debug/pprof/\n", psrv.Addr())
	}
	serving(srv.Addr())

	<-ctx.Done()
	fmt.Fprintln(out, "rdtserved: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if strmSrv != nil {
		// Streams drain first: clients get GOODBYE, stop sending, and
		// collect their remaining acks before the service itself drains.
		if err := strmSrv.Shutdown(dctx); err != nil {
			fmt.Fprintf(out, "rdtserved: stream shutdown: %v\n", err)
		}
	}
	if node != nil {
		// A departing member may still be handing sessions off; those
		// exports need the service alive.
		node.WaitRebalance()
	}
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close()
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Drain(dctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "rdtserved: drained")
	return nil
}
