// Command rdtrouterd fronts a sharded rdtserved cluster: one stable
// address that proxies every per-session request to the member owning
// the session (consistent hashing over the session id), plus the
// cluster's membership administration — adding or removing a member
// builds a new ring epoch, pushes it at every daemon, and the daemons
// hand sessions off between themselves.
//
// Usage:
//
//	rdtrouterd -addr :8080 \
//	    -members "a=127.0.0.1:8081+127.0.0.1:9081,b=127.0.0.1:8082+127.0.0.1:9082"
//
// Change membership at runtime:
//
//	curl -X POST localhost:8080/v1/shard/members \
//	     -d '{"action":"add","member":{"name":"c","http":"127.0.0.1:8083","stream":"127.0.0.1:9083"}}'
//	curl -X POST localhost:8080/v1/shard/members \
//	     -d '{"action":"remove","member":{"name":"a"}}'
//
// With -stream-addr the router also answers the binary wire: every
// OPEN gets a MOVED redirect at the session's owner, so stream
// clients can enter the cluster here too (the data path then runs
// client-to-owner directly).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/shard"
	"github.com/rdt-go/rdt/internal/stream"
	"github.com/rdt-go/rdt/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtrouterd:", err)
		os.Exit(1)
	}
}

// serving is a test seam: it runs once the listener is bound.
var serving = func(addr string) {}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdtrouterd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address (:0 picks a port)")
		streamAddr  = fs.String("stream-addr", "", "stream-wire redirect listener address (:0 picks a port; empty disables)")
		members     = fs.String("members", "", "initial membership: name=HTTPADDR[+STREAMADDR],... (required)")
		vnodes      = fs.Int("vnodes", shard.DefaultVNodes, "virtual nodes per member on the consistent-hash ring")
		bootstrap   = fs.Duration("bootstrap-timeout", 10*time.Second, "budget for pushing the initial ring at the members")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(out, "rdtrouterd %s\n", version.String())
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *members == "" {
		return fmt.Errorf("-members is required")
	}
	ms, err := shard.ParseMembers(*members)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	rt, err := shard.NewRouter(shard.RouterConfig{
		Members:  ms,
		VNodes:   *vnodes,
		Registry: reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, "rdtrouterd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	bctx, cancel := context.WithTimeout(ctx, *bootstrap)
	err = rt.Bootstrap(bctx)
	cancel()
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	fmt.Fprintf(out, "rdtrouterd: ring epoch %d pushed to %d members\n",
		rt.Ring().Epoch, len(rt.Ring().Members))

	srv, err := service.ServeHandler(*addr, rt.Handler(reg))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rdtrouterd: listening on %s\n", srv.Addr())
	var rd *stream.Redirector
	if *streamAddr != "" {
		rd, err = stream.ServeRedirector(*streamAddr, rt.OwnerOf)
		if err != nil {
			_ = srv.Close()
			return err
		}
		fmt.Fprintf(out, "rdtrouterd: stream redirects on %s\n", rd.Addr())
	}
	serving(srv.Addr())

	<-ctx.Done()
	fmt.Fprintln(out, "rdtrouterd: shutting down")
	if rd != nil {
		_ = rd.Close()
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		return srv.Close()
	}
	return nil
}
