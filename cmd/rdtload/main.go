// Command rdtload drives synthetic session traffic at a running
// rdtserved and reports sustained ingest throughput plus a batch
// latency histogram — the measurement tool behind the binary stream
// path's events/sec claims, and (with -digest) a parity check that the
// two ingest paths compute identical verdicts.
//
// Usage:
//
//	rdtserved -addr :8080 -stream-addr :8081 &
//	rdtload -mode stream -addr :8081 -http :8080 -sessions 8 -events 200000
//	rdtload -mode json   -http :8080 -sessions 8 -events 200000
//
// Both invocations generate the same seeded traffic, so their
// "verdict digest" lines must match: same events, same verdicts,
// whichever wire carried them.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/stream"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtload:", err)
		os.Exit(1)
	}
}

type loadConfig struct {
	mode     string
	addr     string
	httpAddr string
	sessions int
	conns    int
	procs    int
	events   int
	batch    int
	shape    string
	seed     int64
	prefix   string
	seal     bool
	digest   bool
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdtload", flag.ContinueOnError)
	cfg := loadConfig{}
	fs.StringVar(&cfg.mode, "mode", "stream", "ingest path to drive: stream or json")
	fs.StringVar(&cfg.addr, "addr", "", "rdtserved stream ingest address; a comma-separated list drives a sharded cluster, following MOVED redirects (mode stream)")
	fs.StringVar(&cfg.httpAddr, "http", "", "rdtserved HTTP API address, comma-separated for a cluster (mode json ingest; any mode: seal + verdict digests)")
	fs.IntVar(&cfg.sessions, "sessions", 4, "concurrent sessions to drive")
	fs.IntVar(&cfg.conns, "conns", 2, "stream connections to multiplex sessions over")
	fs.IntVar(&cfg.procs, "procs", 8, "processes per session")
	fs.IntVar(&cfg.events, "events", 100000, "events per session")
	fs.IntVar(&cfg.batch, "batch", 256, "events per batch")
	fs.StringVar(&cfg.shape, "shape", "random", fmt.Sprintf("traffic shape: %s", strings.Join(stream.TrafficShapes, ", ")))
	fs.Int64Var(&cfg.seed, "seed", 1, "traffic seed (session i uses seed+i)")
	fs.StringVar(&cfg.prefix, "prefix", "load-", "session id prefix")
	fs.BoolVar(&cfg.seal, "seal", true, "seal sessions when done (deterministic final verdicts)")
	fs.BoolVar(&cfg.digest, "digest", true, "fetch verdicts over HTTP and print a parity digest (needs -http)")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	switch cfg.mode {
	case "stream":
		if cfg.addr == "" {
			return fmt.Errorf("mode stream needs -addr")
		}
	case "json":
		if cfg.httpAddr == "" {
			return fmt.Errorf("mode json needs -http")
		}
	default:
		return fmt.Errorf("unknown mode %q (stream or json)", cfg.mode)
	}
	if cfg.sessions < 1 || cfg.conns < 1 || cfg.batch < 1 || cfg.events < 1 {
		return fmt.Errorf("sessions, conns, batch, and events must be positive")
	}
	if cfg.digest && cfg.httpAddr == "" {
		return fmt.Errorf("-digest needs -http")
	}

	fmt.Fprintf(out, "rdtload: mode=%s sessions=%d conns=%d procs=%d batch=%d shape=%s events=%d\n",
		cfg.mode, cfg.sessions, cfg.conns, cfg.procs, cfg.batch, cfg.shape, cfg.sessions*cfg.events)

	streamAddrs := splitList(cfg.addr)
	httpAddrs := splitList(cfg.httpAddr)
	var lat hist
	start := time.Now()
	var err error
	var perDaemon map[string]int
	switch {
	case cfg.mode == "stream" && len(streamAddrs) > 1:
		perDaemon, err = driveStreamCluster(ctx, cfg, streamAddrs, &lat)
	case cfg.mode == "stream":
		err = driveStream(ctx, cfg, &lat)
	default:
		perDaemon, err = driveJSON(ctx, cfg, httpAddrs, &lat)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	total := float64(cfg.sessions) * float64(cfg.events)
	rate := total / elapsed.Seconds()
	cores := runtime.GOMAXPROCS(0)
	fmt.Fprintf(out, "rdtload: throughput %.0f events/sec, %.0f events/sec/core (%d cores) over %s\n",
		rate, rate/float64(cores), cores, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "rdtload: batch latency p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
		lat.quantile(0.50).Round(time.Microsecond), lat.quantile(0.90).Round(time.Microsecond),
		lat.quantile(0.99).Round(time.Microsecond), lat.quantile(0.999).Round(time.Microsecond),
		lat.max.Round(time.Microsecond))
	if len(perDaemon) > 1 {
		addrs := make([]string, 0, len(perDaemon))
		for a := range perDaemon {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, a := range addrs {
			fmt.Fprintf(out, "rdtload: daemon %s: %d events, %.0f events/sec\n",
				a, perDaemon[a], float64(perDaemon[a])/elapsed.Seconds())
		}
	}

	if cfg.digest {
		sum, err := verdictDigest(ctx, cfg, httpAddrs[0])
		if err != nil {
			return fmt.Errorf("verdict digest: %w", err)
		}
		fmt.Fprintf(out, "rdtload: verdict digest %x\n", sum)
	}
	return nil
}

// splitList splits a comma-separated endpoint list.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// driveStream pushes every session's traffic over cfg.conns shared
// binary stream connections, one channel per session.
func driveStream(ctx context.Context, cfg loadConfig, lat *hist) error {
	clients := make([]*stream.Client, cfg.conns)
	hists := make([]hist, cfg.conns) // written by each client's reader goroutine
	for i := range clients {
		i := i
		c, err := stream.Dial(cfg.addr, stream.WithAckObserver(func(events int, rtt time.Duration) {
			hists[i].record(rtt)
		}))
		if err != nil {
			return err
		}
		defer c.Close() //nolint:errcheck
		clients[i] = c
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.sessions)
	for s := 0; s < cfg.sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- driveStreamSession(ctx, cfg, clients[s%cfg.conns], s)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range hists {
		lat.merge(&hists[i])
	}
	return nil
}

func driveStreamSession(ctx context.Context, cfg loadConfig, c *stream.Client, s int) error {
	id := fmt.Sprintf("%s%d", cfg.prefix, s)
	ch, err := c.Open(id, cfg.procs, "rdtload")
	if err != nil {
		return fmt.Errorf("session %s: open: %w", id, err)
	}
	tr, err := stream.NewTraffic(cfg.shape, cfg.procs, cfg.seed+int64(s))
	if err != nil {
		return err
	}
	var batch []service.Event
	for sent := 0; sent < cfg.events; {
		n := min(cfg.batch, cfg.events-sent)
		batch = tr.Next(batch[:0], n)
		if err := ch.Send(batch); err != nil {
			return fmt.Errorf("session %s: send: %w", id, err)
		}
		// The channel retains the batch until acked; hand over ownership
		// by starting the next batch fresh once the window is deep.
		batch = nil
		sent += n
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if cfg.seal {
		if err := ch.Seal(); err != nil {
			return fmt.Errorf("session %s: seal: %w", id, err)
		}
	}
	if err := ch.Flush(ctx); err != nil {
		return fmt.Errorf("session %s: flush: %w", id, err)
	}
	return nil
}

// driveJSON pushes the same traffic through the HTTP/JSON API, one
// goroutine per session, with 429 backoff. Sessions spread round-robin
// over the entry endpoints; in a sharded cluster any member (or the
// router) works as an entry point, since non-owners answer 307 and the
// client follows it with the body intact.
func driveJSON(ctx context.Context, cfg loadConfig, bases []string, lat *hist) (map[string]int, error) {
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.sessions + 4}}
	var mu sync.Mutex // guards lat and perDaemon
	perDaemon := make(map[string]int)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.sessions)
	for s := 0; s < cfg.sessions; s++ {
		s := s
		base := httpBase(bases[s%len(bases)])
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local hist
			err := driveJSONSession(ctx, cfg, hc, base, s, &local)
			mu.Lock()
			lat.merge(&local)
			if err == nil {
				perDaemon[base] += cfg.events
			}
			mu.Unlock()
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return perDaemon, nil
}

// driveStreamCluster drives a sharded cluster over the binary wire:
// one pooled connection per member, opens entering at any endpoint and
// following MOVED to the owner, and — when a rebalance moves a session
// mid-stream — resume-and-replay on the new owner, so the handoff
// costs a reconnect but never an event.
func driveStreamCluster(ctx context.Context, cfg loadConfig, addrs []string, lat *hist) (map[string]int, error) {
	var mu sync.Mutex // guards lat and perDaemon: ack observers run per-connection
	perDaemon := make(map[string]int)
	pool := stream.NewPool(addrs, stream.WithAckObserver(func(events int, rtt time.Duration) {
		mu.Lock()
		lat.record(rtt)
		mu.Unlock()
	}))
	defer pool.Close() //nolint:errcheck

	count := func(addr string, n int) {
		mu.Lock()
		perDaemon[addr] += n
		mu.Unlock()
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.sessions)
	for s := 0; s < cfg.sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- driveClusterSession(ctx, cfg, pool, s, count)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return perDaemon, nil
}

func driveClusterSession(ctx context.Context, cfg loadConfig, pool *stream.Pool, s int, count func(addr string, n int)) error {
	id := fmt.Sprintf("%s%d", cfg.prefix, s)
	ch, addr, err := pool.Open(id, cfg.procs, "rdtload")
	if err != nil {
		return fmt.Errorf("session %s: open: %w", id, err)
	}
	tr, err := stream.NewTraffic(cfg.shape, cfg.procs, cfg.seed+int64(s))
	if err != nil {
		return err
	}
	// resumed re-opens on the current owner after a failure. recorded
	// tells whether the failed frame made it into the old channel's
	// unacked set — then Resume already replayed it — or died before
	// being recorded, in which case the caller sends it again.
	resumed := func(old *stream.Chan, op string) error {
		var rerr error
		for attempt := 0; attempt < 10; attempt++ {
			var fresh *stream.Chan
			var faddr string
			fresh, faddr, rerr = pool.Resume(old)
			if rerr == nil {
				ch, addr = fresh, faddr
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Mid-handoff the session's covering copy may still be in
			// flight between members; give it a beat and re-resolve.
			time.Sleep(50 * time.Millisecond)
		}
		return fmt.Errorf("session %s: %s: resume: %w", id, op, rerr)
	}
	for sent := 0; sent < cfg.events; {
		n := min(cfg.batch, cfg.events-sent)
		batch := tr.Next(nil, n)
		for {
			pre := ch.NextSeq()
			err := ch.Send(batch)
			if err == nil {
				break
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			recorded := ch.NextSeq() > pre
			if rerr := resumed(ch, "send"); rerr != nil {
				return rerr
			}
			if recorded {
				break // Resume replayed it on the new owner
			}
		}
		count(addr, n)
		sent += n
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if cfg.seal {
		for {
			pre := ch.NextSeq()
			err := ch.Seal()
			if err == nil {
				break
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			recorded := ch.NextSeq() > pre
			if rerr := resumed(ch, "seal"); rerr != nil {
				return rerr
			}
			if recorded {
				break
			}
		}
	}
	for {
		err := ch.Flush(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The channel failed while draining acks (the session moved or
		// the owner died); resume replays whatever is still unacked.
		if rerr := resumed(ch, "flush"); rerr != nil {
			return rerr
		}
	}
}

func driveJSONSession(ctx context.Context, cfg loadConfig, hc *http.Client, base string, s int, lat *hist) error {
	id := fmt.Sprintf("%s%d", cfg.prefix, s)
	body, _ := json.Marshal(map[string]any{"id": id, "n": cfg.procs})
	resp, err := hc.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("session %s: create: %w", id, err)
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("session %s: create: status %d", id, resp.StatusCode)
	}

	tr, err := stream.NewTraffic(cfg.shape, cfg.procs, cfg.seed+int64(s))
	if err != nil {
		return err
	}
	url := base + "/v1/sessions/" + id + "/events"
	var batch []service.Event
	for sent := 0; sent < cfg.events; {
		n := min(cfg.batch, cfg.events-sent)
		batch = tr.Next(batch[:0], n)
		payload, err := json.Marshal(batch)
		if err != nil {
			return err
		}
		backoff := 2 * time.Millisecond
		for {
			start := time.Now()
			resp, err := hc.Post(url, "application/json", bytes.NewReader(payload))
			if err != nil {
				return fmt.Errorf("session %s: ingest: %w", id, err)
			}
			drainBody(resp)
			if resp.StatusCode == http.StatusAccepted {
				lat.record(time.Since(start))
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				return fmt.Errorf("session %s: ingest: status %d", id, resp.StatusCode)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		}
		sent += n
	}
	if cfg.seal {
		resp, err := hc.Post(base+"/v1/sessions/"+id+"/seal", "application/json", nil)
		if err != nil {
			return fmt.Errorf("session %s: seal: %w", id, err)
		}
		drainBody(resp)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("session %s: seal: status %d", id, resp.StatusCode)
		}
	} else {
		// A flushing verdict is the JSON path's apply barrier, matching
		// the stream path's Flush.
		resp, err := hc.Get(base + "/v1/sessions/" + id + "/verdict?flush=1")
		if err != nil {
			return fmt.Errorf("session %s: flush: %w", id, err)
		}
		drainBody(resp)
	}
	return nil
}

// verdictDigest hashes every driven session's flushed verdict —
// normalized: the session id is stripped, keys are sorted — in session
// order. Two rdtload runs with the same traffic parameters must print
// the same digest whichever ingest path they used.
func verdictDigest(ctx context.Context, cfg loadConfig, httpAddr string) ([]byte, error) {
	base := httpBase(httpAddr)
	h := sha256.New()
	for s := 0; s < cfg.sessions; s++ {
		id := fmt.Sprintf("%s%d", cfg.prefix, s)
		req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sessions/"+id+"/verdict?flush=1", nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("session %s: verdict: status %d (%s)", id, resp.StatusCode, data)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("session %s: verdict: %w", id, err)
		}
		delete(v, "session")          // ids differ across runs by design
		canon, err := json.Marshal(v) // map marshaling sorts keys
		if err != nil {
			return nil, err
		}
		h.Write(canon)
		h.Write([]byte{'\n'})
	}
	return h.Sum(nil), nil
}

func httpBase(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
