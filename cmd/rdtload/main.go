// Command rdtload drives synthetic session traffic at a running
// rdtserved and reports sustained ingest throughput plus a batch
// latency histogram — the measurement tool behind the binary stream
// path's events/sec claims, and (with -digest) a parity check that the
// two ingest paths compute identical verdicts.
//
// Usage:
//
//	rdtserved -addr :8080 -stream-addr :8081 &
//	rdtload -mode stream -addr :8081 -http :8080 -sessions 8 -events 200000
//	rdtload -mode json   -http :8080 -sessions 8 -events 200000
//
// Both invocations generate the same seeded traffic, so their
// "verdict digest" lines must match: same events, same verdicts,
// whichever wire carried them.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/stream"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdtload:", err)
		os.Exit(1)
	}
}

type loadConfig struct {
	mode     string
	addr     string
	httpAddr string
	sessions int
	conns    int
	procs    int
	events   int
	batch    int
	shape    string
	seed     int64
	prefix   string
	seal     bool
	digest   bool
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdtload", flag.ContinueOnError)
	cfg := loadConfig{}
	fs.StringVar(&cfg.mode, "mode", "stream", "ingest path to drive: stream or json")
	fs.StringVar(&cfg.addr, "addr", "", "rdtserved stream ingest address (mode stream)")
	fs.StringVar(&cfg.httpAddr, "http", "", "rdtserved HTTP API address (mode json ingest; any mode: seal + verdict digests)")
	fs.IntVar(&cfg.sessions, "sessions", 4, "concurrent sessions to drive")
	fs.IntVar(&cfg.conns, "conns", 2, "stream connections to multiplex sessions over")
	fs.IntVar(&cfg.procs, "procs", 8, "processes per session")
	fs.IntVar(&cfg.events, "events", 100000, "events per session")
	fs.IntVar(&cfg.batch, "batch", 256, "events per batch")
	fs.StringVar(&cfg.shape, "shape", "random", fmt.Sprintf("traffic shape: %s", strings.Join(stream.TrafficShapes, ", ")))
	fs.Int64Var(&cfg.seed, "seed", 1, "traffic seed (session i uses seed+i)")
	fs.StringVar(&cfg.prefix, "prefix", "load-", "session id prefix")
	fs.BoolVar(&cfg.seal, "seal", true, "seal sessions when done (deterministic final verdicts)")
	fs.BoolVar(&cfg.digest, "digest", true, "fetch verdicts over HTTP and print a parity digest (needs -http)")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	switch cfg.mode {
	case "stream":
		if cfg.addr == "" {
			return fmt.Errorf("mode stream needs -addr")
		}
	case "json":
		if cfg.httpAddr == "" {
			return fmt.Errorf("mode json needs -http")
		}
	default:
		return fmt.Errorf("unknown mode %q (stream or json)", cfg.mode)
	}
	if cfg.sessions < 1 || cfg.conns < 1 || cfg.batch < 1 || cfg.events < 1 {
		return fmt.Errorf("sessions, conns, batch, and events must be positive")
	}
	if cfg.digest && cfg.httpAddr == "" {
		return fmt.Errorf("-digest needs -http")
	}

	fmt.Fprintf(out, "rdtload: mode=%s sessions=%d conns=%d procs=%d batch=%d shape=%s events=%d\n",
		cfg.mode, cfg.sessions, cfg.conns, cfg.procs, cfg.batch, cfg.shape, cfg.sessions*cfg.events)

	var lat hist
	start := time.Now()
	var err error
	switch cfg.mode {
	case "stream":
		err = driveStream(ctx, cfg, &lat)
	case "json":
		err = driveJSON(ctx, cfg, &lat)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	total := float64(cfg.sessions) * float64(cfg.events)
	rate := total / elapsed.Seconds()
	cores := runtime.GOMAXPROCS(0)
	fmt.Fprintf(out, "rdtload: throughput %.0f events/sec, %.0f events/sec/core (%d cores) over %s\n",
		rate, rate/float64(cores), cores, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "rdtload: batch latency p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
		lat.quantile(0.50).Round(time.Microsecond), lat.quantile(0.90).Round(time.Microsecond),
		lat.quantile(0.99).Round(time.Microsecond), lat.quantile(0.999).Round(time.Microsecond),
		lat.max.Round(time.Microsecond))

	if cfg.digest {
		sum, err := verdictDigest(ctx, cfg)
		if err != nil {
			return fmt.Errorf("verdict digest: %w", err)
		}
		fmt.Fprintf(out, "rdtload: verdict digest %x\n", sum)
	}
	return nil
}

// driveStream pushes every session's traffic over cfg.conns shared
// binary stream connections, one channel per session.
func driveStream(ctx context.Context, cfg loadConfig, lat *hist) error {
	clients := make([]*stream.Client, cfg.conns)
	hists := make([]hist, cfg.conns) // written by each client's reader goroutine
	for i := range clients {
		i := i
		c, err := stream.Dial(cfg.addr, stream.WithAckObserver(func(events int, rtt time.Duration) {
			hists[i].record(rtt)
		}))
		if err != nil {
			return err
		}
		defer c.Close() //nolint:errcheck
		clients[i] = c
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.sessions)
	for s := 0; s < cfg.sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- driveStreamSession(ctx, cfg, clients[s%cfg.conns], s)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range hists {
		lat.merge(&hists[i])
	}
	return nil
}

func driveStreamSession(ctx context.Context, cfg loadConfig, c *stream.Client, s int) error {
	id := fmt.Sprintf("%s%d", cfg.prefix, s)
	ch, err := c.Open(id, cfg.procs, "rdtload")
	if err != nil {
		return fmt.Errorf("session %s: open: %w", id, err)
	}
	tr, err := stream.NewTraffic(cfg.shape, cfg.procs, cfg.seed+int64(s))
	if err != nil {
		return err
	}
	var batch []service.Event
	for sent := 0; sent < cfg.events; {
		n := min(cfg.batch, cfg.events-sent)
		batch = tr.Next(batch[:0], n)
		if err := ch.Send(batch); err != nil {
			return fmt.Errorf("session %s: send: %w", id, err)
		}
		// The channel retains the batch until acked; hand over ownership
		// by starting the next batch fresh once the window is deep.
		batch = nil
		sent += n
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if cfg.seal {
		if err := ch.Seal(); err != nil {
			return fmt.Errorf("session %s: seal: %w", id, err)
		}
	}
	if err := ch.Flush(ctx); err != nil {
		return fmt.Errorf("session %s: flush: %w", id, err)
	}
	return nil
}

// driveJSON pushes the same traffic through the HTTP/JSON API, one
// goroutine per session, with 429 backoff.
func driveJSON(ctx context.Context, cfg loadConfig, lat *hist) error {
	base := httpBase(cfg.httpAddr)
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.sessions + 4}}
	var mu sync.Mutex // guards lat
	var wg sync.WaitGroup
	errs := make(chan error, cfg.sessions)
	for s := 0; s < cfg.sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local hist
			err := driveJSONSession(ctx, cfg, hc, base, s, &local)
			mu.Lock()
			lat.merge(&local)
			mu.Unlock()
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func driveJSONSession(ctx context.Context, cfg loadConfig, hc *http.Client, base string, s int, lat *hist) error {
	id := fmt.Sprintf("%s%d", cfg.prefix, s)
	body, _ := json.Marshal(map[string]any{"id": id, "n": cfg.procs})
	resp, err := hc.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("session %s: create: %w", id, err)
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("session %s: create: status %d", id, resp.StatusCode)
	}

	tr, err := stream.NewTraffic(cfg.shape, cfg.procs, cfg.seed+int64(s))
	if err != nil {
		return err
	}
	url := base + "/v1/sessions/" + id + "/events"
	var batch []service.Event
	for sent := 0; sent < cfg.events; {
		n := min(cfg.batch, cfg.events-sent)
		batch = tr.Next(batch[:0], n)
		payload, err := json.Marshal(batch)
		if err != nil {
			return err
		}
		backoff := 2 * time.Millisecond
		for {
			start := time.Now()
			resp, err := hc.Post(url, "application/json", bytes.NewReader(payload))
			if err != nil {
				return fmt.Errorf("session %s: ingest: %w", id, err)
			}
			drainBody(resp)
			if resp.StatusCode == http.StatusAccepted {
				lat.record(time.Since(start))
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				return fmt.Errorf("session %s: ingest: status %d", id, resp.StatusCode)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		}
		sent += n
	}
	if cfg.seal {
		resp, err := hc.Post(base+"/v1/sessions/"+id+"/seal", "application/json", nil)
		if err != nil {
			return fmt.Errorf("session %s: seal: %w", id, err)
		}
		drainBody(resp)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("session %s: seal: status %d", id, resp.StatusCode)
		}
	} else {
		// A flushing verdict is the JSON path's apply barrier, matching
		// the stream path's Flush.
		resp, err := hc.Get(base + "/v1/sessions/" + id + "/verdict?flush=1")
		if err != nil {
			return fmt.Errorf("session %s: flush: %w", id, err)
		}
		drainBody(resp)
	}
	return nil
}

// verdictDigest hashes every driven session's flushed verdict —
// normalized: the session id is stripped, keys are sorted — in session
// order. Two rdtload runs with the same traffic parameters must print
// the same digest whichever ingest path they used.
func verdictDigest(ctx context.Context, cfg loadConfig) ([]byte, error) {
	base := httpBase(cfg.httpAddr)
	h := sha256.New()
	for s := 0; s < cfg.sessions; s++ {
		id := fmt.Sprintf("%s%d", cfg.prefix, s)
		req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sessions/"+id+"/verdict?flush=1", nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("session %s: verdict: status %d (%s)", id, resp.StatusCode, data)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("session %s: verdict: %w", id, err)
		}
		delete(v, "session")          // ids differ across runs by design
		canon, err := json.Marshal(v) // map marshaling sorts keys
		if err != nil {
			return nil, err
		}
		h.Write(canon)
		h.Write([]byte{'\n'})
	}
	return h.Sum(nil), nil
}

func httpBase(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
