package main

import (
	"bytes"
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/stream"
)

func startServers(t *testing.T) (httpAddr, streamAddr string) {
	t.Helper()
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatalf("new service: %v", err)
	}
	hsrv, err := service.Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatalf("http serve: %v", err)
	}
	ssrv, err := stream.Serve("127.0.0.1:0", stream.Config{Service: svc})
	if err != nil {
		t.Fatalf("stream serve: %v", err)
	}
	t.Cleanup(func() {
		_ = ssrv.Close()
		_ = hsrv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	return hsrv.Addr(), ssrv.Addr()
}

var digestRe = regexp.MustCompile(`verdict digest ([0-9a-f]{64})`)

func loadRun(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := run(ctx, args, &out); err != nil {
		t.Fatalf("rdtload %v: %v\n%s", args, err, out.String())
	}
	return out.String()
}

// TestStreamAndJSONParity drives identical seeded traffic through both
// ingest paths and demands matching verdict digests: same events, same
// verdicts, whichever wire carried them.
func TestStreamAndJSONParity(t *testing.T) {
	httpAddr, streamAddr := startServers(t)
	common := []string{
		"-sessions", "3", "-procs", "5", "-events", "3000",
		"-batch", "100", "-shape", "ring", "-seed", "42",
	}
	outS := loadRun(t, append([]string{
		"-mode", "stream", "-addr", streamAddr, "-http", httpAddr, "-prefix", "s-"}, common...)...)
	outJ := loadRun(t, append([]string{
		"-mode", "json", "-http", httpAddr, "-prefix", "j-"}, common...)...)

	for name, out := range map[string]string{"stream": outS, "json": outJ} {
		if !strings.Contains(out, "throughput ") {
			t.Fatalf("%s output missing throughput line:\n%s", name, out)
		}
		if strings.Contains(out, "throughput 0 events/sec") {
			t.Fatalf("%s reported zero throughput:\n%s", name, out)
		}
	}
	ds := digestRe.FindStringSubmatch(outS)
	dj := digestRe.FindStringSubmatch(outJ)
	if ds == nil || dj == nil {
		t.Fatalf("missing digest lines:\n%s\n%s", outS, outJ)
	}
	if ds[1] != dj[1] {
		t.Fatalf("digest mismatch: stream %s vs json %s\nstream:\n%s\njson:\n%s",
			ds[1], dj[1], outS, outJ)
	}
}

// TestShapesDiffer sanity-checks that the digest actually discriminates:
// different traffic must not collide.
func TestShapesDiffer(t *testing.T) {
	httpAddr, streamAddr := startServers(t)
	base := []string{"-mode", "stream", "-addr", streamAddr, "-http", httpAddr,
		"-sessions", "1", "-procs", "4", "-events", "500", "-batch", "50"}
	a := digestRe.FindStringSubmatch(loadRun(t, append(base, "-prefix", "a-", "-shape", "ring")...))
	b := digestRe.FindStringSubmatch(loadRun(t, append(base, "-prefix", "b-", "-shape", "pairs")...))
	if a == nil || b == nil {
		t.Fatal("missing digest lines")
	}
	if a[1] == b[1] {
		t.Fatalf("different shapes produced the same digest %s", a[1])
	}
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-mode", "teleport"},
		{"-mode", "stream"}, // no -addr
		{"-mode", "json"},   // no -http
		{"-mode", "stream", "-addr", "x", "-sessions", "0"},
		{"-mode", "stream", "-addr", "x", "-digest=true"}, // digest needs -http
	} {
		if err := run(ctx, args, &out); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Millisecond)
	}
	if h.total != 1000 {
		t.Fatalf("total %d", h.total)
	}
	p50 := h.quantile(0.50)
	if p50 < 400*time.Millisecond || p50 > 600*time.Millisecond {
		t.Fatalf("p50 = %s, want ~500ms", p50)
	}
	p99 := h.quantile(0.99)
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("p99 = %s, want ~990ms", p99)
	}
	if h.max != time.Second {
		t.Fatalf("max = %s", h.max)
	}
	if h.quantile(1) != h.max {
		t.Fatalf("q1 = %s, want max", h.quantile(1))
	}

	// Sub-microsecond and absurdly large observations stay in range.
	var edge hist
	edge.record(10 * time.Nanosecond)
	edge.record(300 * time.Hour)
	if edge.total != 2 {
		t.Fatalf("edge total %d", edge.total)
	}

	// Merge sums counts and keeps the global max.
	var a, b hist
	a.record(time.Millisecond)
	b.record(time.Second)
	a.merge(&b)
	if a.total != 2 || a.max != time.Second {
		t.Fatalf("merge: total=%d max=%s", a.total, a.max)
	}
	_ = fmt.Sprint(a.quantile(0.5))
}
