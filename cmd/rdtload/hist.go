package main

import (
	"math"
	"math/bits"
	"time"
)

// hist is an HDR-style log-linear latency histogram: one octave per
// power of two of microseconds, 16 linear sub-buckets per octave, so
// quantile error is bounded at ~6% across the full µs-to-minutes range
// with a few kilobytes of counters and no allocation per record.
const (
	histOctaves = 36 // 1µs .. ~64ks upper bound
	histSubBits = 4
	histSub     = 1 << histSubBits
)

type hist struct {
	counts [histOctaves * histSub]uint64
	total  uint64
	max    time.Duration
}

func bucketOf(d time.Duration) int {
	us := uint64(d.Microseconds())
	if us == 0 {
		us = 1
	}
	g := uint(bits.Len64(us)) - 1 // 2^g <= us < 2^(g+1)
	var sub uint64
	if g >= histSubBits {
		sub = (us >> (g - histSubBits)) & (histSub - 1)
	} else {
		sub = (us << (histSubBits - g)) & (histSub - 1)
	}
	idx := int(g)*histSub + int(sub)
	if idx >= histOctaves*histSub {
		idx = histOctaves*histSub - 1
	}
	return idx
}

// bucketLow is the bucket's lower bound.
func bucketLow(idx int) time.Duration {
	g := idx / histSub
	sub := idx % histSub
	us := math.Exp2(float64(g)) * (1 + float64(sub)/histSub)
	return time.Duration(us * float64(time.Microsecond))
}

func (h *hist) record(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.total++
	if d > h.max {
		h.max = d
	}
}

// merge folds other into h (for per-worker histograms).
func (h *hist) merge(other *hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// quantile returns the latency at or below which a fraction q of the
// recorded observations fall (the bucket lower bound — a conservative
// estimate).
func (h *hist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	want := uint64(q * float64(h.total))
	if want >= h.total {
		return h.max
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > want {
			return bucketLow(i)
		}
	}
	return h.max
}
