#!/usr/bin/env bash
# durability_smoke.sh — kill -9 a live rdtserved and verify the restart
# answers the identical verdict from its WAL + snapshots.
#
# The daemon is started with -data-dir, a session is created and fed a
# known event stream (including the Figure 1 style exchange), the
# verdict is captured, then the process is killed hard (no drain, no
# final snapshot). A second daemon on the same data dir must log a
# recovery and serve a bit-identical verdict, then keep ingesting.
#
# Usage: scripts/durability_smoke.sh [path-to-rdtserved]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/rdt-durability.XXXXXX")"
DATA="$WORK/data"
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

if [ -z "$BIN" ]; then
  BIN="$WORK/rdtserved"
  go build -o "$BIN" ./cmd/rdtserved
fi

ADDR="127.0.0.1:18474"
BASE="http://$ADDR"

start_daemon() {
  "$BIN" -addr "$ADDR" -data-dir "$DATA" -snapshot-every 4 >"$WORK/$1.log" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$PID" 2>/dev/null; then
      echo "daemon died on startup:" >&2
      cat "$WORK/$1.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "daemon did not become healthy" >&2
  exit 1
}

echo "== boot =="
start_daemon boot

echo "== ingest =="
curl -fsS -X POST "$BASE/v1/sessions" -d '{"id":"smoke","n":3}' >/dev/null
curl -fsS -X POST "$BASE/v1/sessions/smoke/events" -d '[
  {"op":"checkpoint","proc":0},
  {"op":"send","proc":1,"peer":0,"msg":0},
  {"op":"deliver","msg":0},
  {"op":"checkpoint","proc":0},
  {"op":"send","proc":0,"peer":2,"msg":1},
  {"op":"deliver","msg":1},
  {"op":"checkpoint","proc":2},
  {"op":"send","proc":2,"peer":1,"msg":2},
  {"op":"deliver","msg":2},
  {"op":"checkpoint","proc":1}
]' >/dev/null
# A sub-threshold tail after the last snapshot, so the restart must
# actually replay WAL records instead of just loading a snapshot.
curl -fsS -X POST "$BASE/v1/sessions/smoke/events" -d '[{"op":"checkpoint","proc":2}]' >/dev/null
curl -fsS -X POST "$BASE/v1/sessions/smoke/events" -d '[{"op":"send","proc":0,"peer":1,"msg":3}]' >/dev/null
BEFORE="$(curl -fsS "$BASE/v1/sessions/smoke/verdict?flush=1")"
echo "verdict: $BEFORE"

echo "== kill -9 =="
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== restart =="
start_daemon restart
grep "recovered" "$WORK/restart.log"
if grep -q "(0 records / 0 events replayed" "$WORK/restart.log"; then
  echo "expected a nonzero WAL replay after kill -9" >&2
  exit 1
fi

AFTER="$(curl -fsS "$BASE/v1/sessions/smoke/verdict")"
if [ "$BEFORE" != "$AFTER" ]; then
  echo "VERDICT MISMATCH after crash recovery" >&2
  echo "  before: $BEFORE" >&2
  echo "  after:  $AFTER" >&2
  exit 1
fi
echo "verdict identical after kill -9 + restart"

# The recovered session is live: it accepts more events and seals.
curl -fsS -X POST "$BASE/v1/sessions/smoke/events" \
  -d '[{"op":"checkpoint","proc":1}]' >/dev/null
curl -fsS -X POST "$BASE/v1/sessions/smoke/seal" >/dev/null
STATE="$(curl -fsS "$BASE/v1/sessions/smoke/verdict" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
if [ "$STATE" != "sealed" ]; then
  echo "expected sealed state after recovery, got: $STATE" >&2
  exit 1
fi

kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""
echo "durability smoke: OK"
