#!/usr/bin/env bash
# bench.sh — run the benchmark suite and gate against the committed
# baseline.
#
# The suite's numbers land in results/BENCH_4.json (ns/op, B/op,
# allocs/op, and the custom R metrics the figure benchmarks report). When
# the baseline exists the fresh run is compared against it and the script
# fails if any benchmark's ns/op regressed beyond the tolerance; B/op,
# allocs/op and R values are recorded but never gate. Suspected
# regressions are re-run in isolation before the script fails, so a
# benchmark that only reads slow inside the full-suite run (ambient load,
# vCPU throttling) does not produce a false alarm.
#
# The ingest throughput benchmarks get their own baseline
# (results/BENCH_9.json) and their own gate: rdtbench -mode throughput
# fails the run when either path's events/s drops more than the
# tolerance below its committed rate. They are excluded from the ns/op
# suite (their ns/op is just the inverse of the gated rate) and run with
# a longer benchtime so the rate isn't dominated by session setup.
#
#   scripts/bench.sh                  # compare against the baselines
#   BENCH_UPDATE=1 scripts/bench.sh   # rewrite the baselines
#
# Knobs: BENCH_TIME (go test -benchtime, default 100ms), BENCH_COUNT
# (repetitions per benchmark — rdtbench keeps the fastest, default 5;
# several repeats matter on throttled/shared hosts, where a run right
# after a CPU-heavy benchmark can read 50%+ slow until the vCPU's burst
# credit recovers), BENCH_TOLERANCE (fractional ns/op growth allowed,
# default 0.15), BENCH_OUT (ns/op baseline path), BENCH_RATE_OUT
# (throughput baseline path), BENCH_RATE_TOLERANCE (fractional events/s
# drop allowed, default 0.30 — end-to-end rates swing more than
# micro-benchmark ns/op), BENCH_RATE_TIME (throughput benchtime,
# default 1s).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-results/BENCH_4.json}"
time="${BENCH_TIME:-100ms}"
count="${BENCH_COUNT:-5}"
tolerance="${BENCH_TOLERANCE:-0.15}"
rate_out="${BENCH_RATE_OUT:-results/BENCH_9.json}"
rate_time="${BENCH_RATE_TIME:-1s}"
rate_count="${BENCH_RATE_COUNT:-3}"
rate_tolerance="${BENCH_RATE_TOLERANCE:-0.30}"

tmp="$(mktemp)"
cmp="$(mktemp)"
trap 'rm -f "$tmp" "$cmp"' EXIT

ns_suite() {
    # -short skips the ingest throughput benchmarks: they gate on
    # events/s below, and at the ns suite's short benchtime their ns/op
    # would mostly measure session setup.
    go test -bench . -benchmem -benchtime "$time" -count "$count" -run '^$' -short . | tee "$tmp"

    if [ -f "$out" ] && [ "${BENCH_UPDATE:-0}" != "1" ]; then
        if go run ./cmd/rdtbench -baseline "$out" -tolerance "$tolerance" < "$tmp" | tee "$cmp"; then
            return 0
        fi
        # On a loaded or throttled host a full-suite run can make individual
        # benchmarks read 20-50% slow. A real regression reproduces when the
        # benchmark runs alone, so confirm the suspects in isolation before
        # failing; their siblings from the baseline show as "gone" in the
        # second comparison, which never gates.
        suspects="$(awk '$1=="REGRESSED" {split($2,a,"/"); print a[1]}' "$cmp" | sort -u | paste -sd'|' -)"
        [ -n "$suspects" ] || return 1
        echo "gate tripped; re-running in isolation: $suspects"
        go test -bench "^($suspects)\$" -benchmem -benchtime "$time" -count "$count" -run '^$' -short . | tee "$tmp"
        go run ./cmd/rdtbench -baseline "$out" -tolerance "$tolerance" < "$tmp"
    else
        mkdir -p "$(dirname "$out")"
        go run ./cmd/rdtbench -out "$out" -note "benchtime=$time" < "$tmp"
    fi
}

rate_suite() {
    go test -bench 'BenchmarkIngestThroughput' -benchtime "$rate_time" -count "$rate_count" -run '^$' . | tee "$tmp"

    if [ -f "$rate_out" ] && [ "${BENCH_UPDATE:-0}" != "1" ]; then
        go run ./cmd/rdtbench -mode throughput -baseline "$rate_out" -tolerance "$rate_tolerance" < "$tmp"
    else
        mkdir -p "$(dirname "$rate_out")"
        go run ./cmd/rdtbench -out "$rate_out" -note "ingest throughput baseline, benchtime=$rate_time" < "$tmp"
    fi
}

ns_suite
rate_suite
