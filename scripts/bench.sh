#!/usr/bin/env bash
# bench.sh — run the benchmark suite and gate against the committed
# baseline.
#
# The suite's numbers land in results/BENCH_4.json (ns/op, B/op,
# allocs/op, and the custom R metrics the figure benchmarks report). When
# the baseline exists the fresh run is compared against it and the script
# fails if any benchmark's ns/op regressed beyond the tolerance; B/op,
# allocs/op and R values are recorded but never gate. Suspected
# regressions are re-run in isolation before the script fails, so a
# benchmark that only reads slow inside the full-suite run (ambient load,
# vCPU throttling) does not produce a false alarm.
#
#   scripts/bench.sh                  # compare against the baseline
#   BENCH_UPDATE=1 scripts/bench.sh   # rewrite the baseline
#
# Knobs: BENCH_TIME (go test -benchtime, default 100ms), BENCH_COUNT
# (repetitions per benchmark — rdtbench keeps the fastest, default 5;
# several repeats matter on throttled/shared hosts, where a run right
# after a CPU-heavy benchmark can read 50%+ slow until the vCPU's burst
# credit recovers), BENCH_TOLERANCE (fractional ns/op growth allowed,
# default 0.15), BENCH_OUT (baseline path).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-results/BENCH_4.json}"
time="${BENCH_TIME:-100ms}"
count="${BENCH_COUNT:-5}"
tolerance="${BENCH_TOLERANCE:-0.15}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -bench . -benchmem -benchtime "$time" -count "$count" -run '^$' . | tee "$tmp"

if [ -f "$out" ] && [ "${BENCH_UPDATE:-0}" != "1" ]; then
    cmp="$(mktemp)"
    trap 'rm -f "$tmp" "$cmp"' EXIT
    if go run ./cmd/rdtbench -baseline "$out" -tolerance "$tolerance" < "$tmp" | tee "$cmp"; then
        exit 0
    fi
    # On a loaded or throttled host a full-suite run can make individual
    # benchmarks read 20-50% slow. A real regression reproduces when the
    # benchmark runs alone, so confirm the suspects in isolation before
    # failing; their siblings from the baseline show as "gone" in the
    # second comparison, which never gates.
    suspects="$(awk '$1=="REGRESSED" {split($2,a,"/"); print a[1]}' "$cmp" | sort -u | paste -sd'|' -)"
    [ -n "$suspects" ] || exit 1
    echo "gate tripped; re-running in isolation: $suspects"
    go test -bench "^($suspects)\$" -benchmem -benchtime "$time" -count "$count" -run '^$' . | tee "$tmp"
    go run ./cmd/rdtbench -baseline "$out" -tolerance "$tolerance" < "$tmp"
else
    mkdir -p "$(dirname "$out")"
    go run ./cmd/rdtbench -out "$out" -note "benchtime=$time" < "$tmp"
fi
