#!/usr/bin/env bash
# shard_smoke.sh — boot a 3-member sharded rdtserved cluster behind
# rdtrouterd, drive it over the binary wire with rdtload, and change
# membership mid-ingest: one member leaves, a fresh member joins. Every
# displaced session is handed off live (passivate, ship, reactivate)
# while its producer keeps streaming.
#
# Three assertions:
#   1. Parity: the cluster's verdict digest over the seeded workload is
#      bit-identical to a single unsharded rdtserved's digest over the
#      same traffic — zero lost, zero duplicated events through both
#      rebalances (the digest covers events_applied and the full RDT
#      verdict of every session).
#   2. Drain: the removed member ends the run holding no sessions.
#   3. Spread: the newly-joined member ends the run owning at least one
#      of the driven sessions.
#
# Knobs: SHARD_SMOKE_SESSIONS (default 10), SHARD_SMOKE_EVENTS (events
# per session, default 6000), SHARD_SMOKE_BATCH (default 32).
set -euo pipefail

cd "$(dirname "$0")/.."

SESSIONS="${SHARD_SMOKE_SESSIONS:-10}"
EVENTS="${SHARD_SMOKE_EVENTS:-6000}"
BATCH="${SHARD_SMOKE_BATCH:-32}"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/rdt-shard.XXXXXX")"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/rdtserved" ./cmd/rdtserved
go build -o "$WORK/rdtrouterd" ./cmd/rdtrouterd
go build -o "$WORK/rdtload" ./cmd/rdtload

# boot_member NAME: start one ringless shard member on ephemeral ports
# (it adopts its ring from the router's config push) and record its
# HTTP/stream addresses in NAME_HTTP / NAME_STREAM.
boot_member() {
  local name="$1" log="$WORK/$1.log"
  mkdir -p "$WORK/data-$name"
  "$WORK/rdtserved" -addr 127.0.0.1:0 -stream-addr 127.0.0.1:0 \
    -data-dir "$WORK/data-$name" -shard-self "$name" >"$log" 2>&1 &
  PIDS+=("$!")
  local pid="$!"
  for _ in $(seq 1 100); do
    if grep -q "stream ingest on" "$log"; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "member $name died on startup:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  local http stream
  http="$(sed -n 's/^rdtserved: listening on \([0-9.:]*\).*/\1/p' "$log")"
  stream="$(sed -n 's/^rdtserved: stream ingest on \([0-9.:]*\)$/\1/p' "$log")"
  if [ -z "$http" ] || [ -z "$stream" ]; then
    echo "could not parse $name's listen addresses from:" >&2
    cat "$log" >&2
    exit 1
  fi
  eval "${name^^}_HTTP=$http ${name^^}_STREAM=$stream"
  echo "member $name: http=$http stream=$stream"
}

echo "== boot members =="
boot_member a
boot_member b
boot_member c
boot_member d # joins mid-ingest; ringless until then

echo "== boot router over {a, b, c} =="
"$WORK/rdtrouterd" -addr 127.0.0.1:0 \
  -members "a=$A_HTTP+$A_STREAM,b=$B_HTTP+$B_STREAM,c=$C_HTTP+$C_STREAM" \
  >"$WORK/router.log" 2>&1 &
PIDS+=("$!")
ROUTER_PID="$!"
for _ in $(seq 1 100); do
  if grep -q "listening on" "$WORK/router.log"; then break; fi
  if ! kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "router died on startup:" >&2
    cat "$WORK/router.log" >&2
    exit 1
  fi
  sleep 0.1
done
ROUTER="$(sed -n 's/^rdtrouterd: listening on \([0-9.:]*\)$/\1/p' "$WORK/router.log")"
echo "router: http=$ROUTER"

COMMON=(-sessions "$SESSIONS" -conns 2 -procs 4 -events "$EVENTS" -batch "$BATCH" -shape random -seed 11 -prefix shard-)

echo "== rdtload against the cluster (rebalance mid-ingest) =="
"$WORK/rdtload" -mode stream -addr "$A_STREAM,$B_STREAM,$C_STREAM" -http "$ROUTER" \
  "${COMMON[@]}" >"$WORK/cluster.out" 2>&1 &
LOAD_PID="$!"
PIDS+=("$LOAD_PID")

sleep 0.5
if ! kill -0 "$LOAD_PID" 2>/dev/null; then
  echo "rdtload finished before the rebalance; raise SHARD_SMOKE_EVENTS" >&2
  cat "$WORK/cluster.out" >&2
  exit 1
fi
echo "== membership change: remove c =="
curl -sf -X POST "http://$ROUTER/v1/shard/members" \
  -d '{"action":"remove","member":{"name":"c"}}' >/dev/null
sleep 0.5
echo "== membership change: add d =="
curl -sf -X POST "http://$ROUTER/v1/shard/members" \
  -d "{\"action\":\"add\",\"member\":{\"name\":\"d\",\"http\":\"$D_HTTP\",\"stream\":\"$D_STREAM\"}}" >/dev/null

if ! wait "$LOAD_PID"; then
  echo "rdtload against the cluster failed:" >&2
  cat "$WORK/cluster.out" >&2
  exit 1
fi
cat "$WORK/cluster.out"
cluster_digest="$(awk '/verdict digest/ {print $4; exit}' "$WORK/cluster.out")"

echo "== cluster state checks =="
epoch="$(curl -sf "http://$ROUTER/healthz" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')"
echo "ring epoch: $epoch"
if [ "$epoch" != "3" ]; then
  echo "expected ring epoch 3 after two membership changes, got $epoch" >&2
  exit 1
fi
c_sessions="$(curl -sf "http://$C_HTTP/v1/sessions" | { grep -o '"id"' || true; } | wc -l)"
d_sessions="$(curl -sf "http://$D_HTTP/v1/sessions" | { grep -o '"id"' || true; } | wc -l)"
echo "removed member c holds $c_sessions sessions; joined member d holds $d_sessions"
if [ "$c_sessions" -ne 0 ]; then
  echo "removed member still holds $c_sessions sessions after handoff" >&2
  exit 1
fi
if [ "$d_sessions" -lt 1 ]; then
  echo "joined member received no sessions" >&2
  exit 1
fi

echo "== reference: single unsharded daemon, same workload =="
"$WORK/rdtserved" -addr 127.0.0.1:0 -stream-addr 127.0.0.1:0 >"$WORK/ref.log" 2>&1 &
PIDS+=("$!")
REF_PID="$!"
for _ in $(seq 1 100); do
  if grep -q "stream ingest on" "$WORK/ref.log"; then break; fi
  if ! kill -0 "$REF_PID" 2>/dev/null; then
    echo "reference daemon died on startup:" >&2
    cat "$WORK/ref.log" >&2
    exit 1
  fi
  sleep 0.1
done
REF_HTTP="$(sed -n 's/^rdtserved: listening on \([0-9.:]*\).*/\1/p' "$WORK/ref.log")"
REF_STREAM="$(sed -n 's/^rdtserved: stream ingest on \([0-9.:]*\)$/\1/p' "$WORK/ref.log")"
"$WORK/rdtload" -mode stream -addr "$REF_STREAM" -http "$REF_HTTP" \
  "${COMMON[@]}" | tee "$WORK/ref.out"
ref_digest="$(awk '/verdict digest/ {print $4; exit}' "$WORK/ref.out")"

echo "== results =="
if [ -z "$cluster_digest" ] || [ "$cluster_digest" != "$ref_digest" ]; then
  echo "VERDICT DIGEST MISMATCH: cluster diverged from the unsharded reference" >&2
  echo "  cluster: $cluster_digest" >&2
  echo "  single:  $ref_digest" >&2
  exit 1
fi
echo "verdict digests identical across cluster rebalance ($cluster_digest)"
echo "shard smoke: OK"
