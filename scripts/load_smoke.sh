#!/usr/bin/env bash
# load_smoke.sh — boot a real rdtserved with both ingest wires and race
# rdtload over each: the JSON API versus the RDTSTRM1 binary stream.
#
# Three assertions:
#   1. Parity: identical seeded traffic through either wire must produce
#      identical verdicts (rdtload's digest canonicalizes the per-session
#      verdict documents and hashes them in session order).
#   2. Liveness: both wires report nonzero throughput.
#   3. Speed: the stream sustains at least LOAD_SMOKE_MIN_RATIO (default
#      5) times the JSON path's events/sec. The workload uses
#      fine-grained batches — the granularity a live event stream
#      naturally produces — which is exactly where the JSON path drowns
#      in per-request overhead (HTTP framing, header parse, per-batch
#      marshal/unmarshal) and the multiplexed, credit-windowed binary
#      wire does not.
#
# Both throughput numbers are printed either way. Knobs:
# LOAD_SMOKE_MIN_RATIO (stream/JSON floor, default 5), LOAD_SMOKE_BATCH
# (events per batch, default 2), LOAD_SMOKE_EVENTS (events per session,
# default 2000).
set -euo pipefail

cd "$(dirname "$0")/.."

MIN_RATIO="${LOAD_SMOKE_MIN_RATIO:-5}"
BATCH="${LOAD_SMOKE_BATCH:-2}"
EVENTS="${LOAD_SMOKE_EVENTS:-2000}"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/rdt-load.XXXXXX")"
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/rdtserved" ./cmd/rdtserved
go build -o "$WORK/rdtload" ./cmd/rdtload

echo "== boot =="
"$WORK/rdtserved" -addr 127.0.0.1:0 -stream-addr 127.0.0.1:0 >"$WORK/served.log" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  if grep -q "stream ingest on" "$WORK/served.log"; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "daemon died on startup:" >&2
    cat "$WORK/served.log" >&2
    exit 1
  fi
  sleep 0.1
done
HTTP_ADDR="$(sed -n 's/^rdtserved: listening on \([0-9.:]*\).*/\1/p' "$WORK/served.log")"
STREAM_ADDR="$(sed -n 's/^rdtserved: stream ingest on \([0-9.:]*\)$/\1/p' "$WORK/served.log")"
if [ -z "$HTTP_ADDR" ] || [ -z "$STREAM_ADDR" ]; then
  echo "could not parse listen addresses from:" >&2
  cat "$WORK/served.log" >&2
  exit 1
fi
echo "http=$HTTP_ADDR stream=$STREAM_ADDR"

COMMON=(-sessions 8 -conns 2 -procs 4 -events "$EVENTS" -batch "$BATCH" -shape random -seed 7)

echo "== rdtload: JSON ingest =="
"$WORK/rdtload" -mode json -http "$HTTP_ADDR" -prefix smoke-json- "${COMMON[@]}" | tee "$WORK/json.out"

echo "== rdtload: binary stream ingest =="
"$WORK/rdtload" -mode stream -addr "$STREAM_ADDR" -http "$HTTP_ADDR" -prefix smoke-stream- "${COMMON[@]}" | tee "$WORK/stream.out"

json_rate="$(awk '/throughput/ {print $3; exit}' "$WORK/json.out")"
stream_rate="$(awk '/throughput/ {print $3; exit}' "$WORK/stream.out")"
json_digest="$(awk '/verdict digest/ {print $4; exit}' "$WORK/json.out")"
stream_digest="$(awk '/verdict digest/ {print $4; exit}' "$WORK/stream.out")"

echo "== results =="
echo "json:   $json_rate events/sec"
echo "stream: $stream_rate events/sec"

if [ -z "$json_rate" ] || [ -z "$stream_rate" ] || \
   ! awk "BEGIN{exit !($json_rate > 0 && $stream_rate > 0)}"; then
  echo "expected nonzero throughput on both wires" >&2
  exit 1
fi

if [ -z "$json_digest" ] || [ "$json_digest" != "$stream_digest" ]; then
  echo "VERDICT DIGEST MISMATCH between wires" >&2
  echo "  json:   $json_digest" >&2
  echo "  stream: $stream_digest" >&2
  exit 1
fi
echo "verdict digests identical across wires ($stream_digest)"

ratio="$(awk "BEGIN{printf \"%.2f\", $stream_rate / $json_rate}")"
echo "stream/json ratio: ${ratio}x (floor ${MIN_RATIO}x)"
if ! awk "BEGIN{exit !($stream_rate >= $json_rate * $MIN_RATIO)}"; then
  echo "stream ingest is not ${MIN_RATIO}x the JSON path" >&2
  exit 1
fi
echo "load smoke: OK"
