// Package rdt is a library for Rollback-Dependency Trackability (RDT) in
// message-passing systems: communication-induced checkpointing protocols
// that guarantee every rollback dependency between local checkpoints is
// on-line trackable with transitive dependency vectors, together with the
// analyses that property unlocks — minimum/maximum consistent global
// checkpoints, recovery lines, zigzag-path detection — and the
// infrastructure to run them: a goroutine-per-process runtime with
// pluggable transports, persistent checkpoint stores, a deterministic
// discrete-event simulator, and an experiment harness reproducing the
// paper's evaluation.
//
// # Background
//
// Processes that checkpoint independently risk hidden, non-causal
// dependencies (zigzag paths) between their checkpoints; such checkpoints
// may belong to no consistent global checkpoint at all, and recovery can
// collapse in a domino effect. A checkpoint and communication pattern has
// the RDT property when every rollback dependency (every path of its
// R-graph) is witnessed by a *causal* message chain — then a simple
// dependency vector tracks all dependencies on-line, any set of mutually
// non-causally-related checkpoints extends to a consistent global
// checkpoint, and the minimum consistent global checkpoint containing a
// checkpoint is exactly the vector recorded with it.
//
// RDT cannot be observed locally, so protocols enforce *visible*
// conditions: predicates evaluated when a message arrives, forcing an
// additional local checkpoint before delivery when they hold. This
// package implements the full hierarchy of published conditions — the
// paper's protocol (BHMR, condition C1 ∨ C2) and its two variants, Wang's
// FDAS and FDI, Russell's no-receive-after-send, checkpoint-before-
// receive, and Wu–Fuchs checkpoint-after-send — behind one interface,
// plus an uncoordinated baseline for comparison.
//
// # Quick start
//
// Run an application on the concurrent runtime with the BHMR protocol:
//
//	c, err := rdt.NewCluster(rdt.ClusterConfig{
//		N:        4,
//		Protocol: rdt.BHMR,
//		Handler: func(n *rdt.Node, from int, payload []byte) {
//			// deliveries arrive here, in the process's goroutine
//		},
//	})
//	// send messages and take basic checkpoints...
//	_ = c.Node(0).Send(1, []byte("work"))
//	_ = c.Node(2).Checkpoint()
//	c.Quiesce()
//	pattern, err := c.Stop()
//
//	report, err := rdt.CheckRDT(pattern, 0) // offline certification
//
// See the examples directory for complete programs: a quickstart, a
// client/server request chain, failure recovery with rollback lines, and
// causal distributed breakpoints.
package rdt
