package rdt_test

// One benchmark per artifact of the evaluation (see DESIGN.md §5):
//
//	BenchmarkFigRandomEnvironment   — E1, "R in random environments"
//	BenchmarkFigOverlappingGroups   — E2, Figure 8
//	BenchmarkFigClientServer        — E3, Figure 9
//	BenchmarkTableReductionVsFDAS   — E4, headline reduction table
//	BenchmarkTablePiggybackSize     — E5, control-information cost
//	BenchmarkMinGlobalCheckpoint    — E6, Corollary 4.5 on-the-fly vs brute force
//	BenchmarkDominoEffect           — E7, rollback depth with/without coordination
//	BenchmarkAblationVariants       — E8, BHMR family ablation
//
// The figure/table benchmarks run the same harness as cmd/rdtexperiments
// (reduced grid) and surface the headline values as custom metrics, so
// `go test -bench=.` regenerates every number of EXPERIMENTS.md in
// miniature. Micro-benchmarks for the protocol hot path and the offline
// analyses follow.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	rdt "github.com/rdt-go/rdt"
	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/experiments"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/sim"
	"github.com/rdt-go/rdt/internal/stream"
	"github.com/rdt-go/rdt/internal/workload"
)

// benchFigure runs one environment figure and reports the mid-sweep R of
// the paper's protocol and of FDAS as custom metrics.
func benchFigure(b *testing.B, env string) {
	b.Helper()
	cfg := experiments.Quick()
	var last *struct{ bhmr, fdas float64 }
	for i := 0; i < b.N; i++ {
		series, err := experiments.FigureR(cfg, env)
		if err != nil {
			b.Fatal(err)
		}
		last = &struct{ bhmr, fdas float64 }{
			bhmr: series.Lines[core.KindBHMR.String()][len(cfg.BasicMeans)-1],
			fdas: series.Lines[core.KindFDAS.String()][len(cfg.BasicMeans)-1],
		}
	}
	if last != nil {
		b.ReportMetric(last.bhmr, "R(bhmr)")
		b.ReportMetric(last.fdas, "R(fdas)")
	}
}

func BenchmarkFigRandomEnvironment(b *testing.B) { benchFigure(b, "random") }
func BenchmarkFigOverlappingGroups(b *testing.B) { benchFigure(b, "groups") }
func BenchmarkFigClientServer(b *testing.B)      { benchFigure(b, "client-server") }

func BenchmarkTableReductionVsFDAS(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReductionVsFDAS(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTablePiggybackSize measures the per-message protocol cost that
// the size table summarizes: building the piggyback on send (the dominant
// per-message work of each protocol), with the wire size as metric.
func BenchmarkTablePiggybackSize(b *testing.B) {
	for _, kind := range []core.Kind{core.KindFDAS, core.KindBHMRCausalOnly, core.KindBHMR} {
		for _, n := range []int{8, 32} {
			b.Run(fmt.Sprintf("%v/n=%d", kind, n), func(b *testing.B) {
				inst, err := core.New(kind, 0, n, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(inst.WireSize()), "wire-bytes")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pb, _ := inst.OnSend(1)
					_ = pb
				}
			})
		}
	}
}

// minGlobalFixture simulates one annotated BHMR trace for E6.
func minGlobalFixture(b *testing.B) *model.Pattern {
	b.Helper()
	cfg := sim.DefaultConfig(core.KindBHMR, 31)
	cfg.N = 6
	cfg.Duration = 150
	res, err := sim.Run(cfg, &workload.Random{MeanGap: 1})
	if err != nil {
		b.Fatal(err)
	}
	return res.Pattern
}

func BenchmarkMinGlobalCheckpoint(b *testing.B) {
	p := minGlobalFixture(b)
	target := model.CkptID{Proc: 2, Index: len(p.Checkpoints[2]) / 2}
	ck, err := p.Checkpoint(target)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("on-the-fly", func(b *testing.B) {
		// Corollary 4.5: the protocol already computed the answer; reading
		// it is a vector copy.
		for i := 0; i < b.N; i++ {
			g := make(model.GlobalCheckpoint, len(ck.TDV))
			copy(g, ck.TDV)
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rgraph.MinConsistentContaining(p, target); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDominoEffect(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Domino(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVariants(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks: protocol hot path ---

// BenchmarkProtocolArrival measures the per-delivery cost of each
// protocol's condition evaluation plus control merge at n=8.
func BenchmarkProtocolArrival(b *testing.B) {
	for _, kind := range core.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			const n = 8
			sender, err := core.New(kind, 1, n, nil)
			if err != nil {
				b.Fatal(err)
			}
			receiver, err := core.New(kind, 0, n, nil)
			if err != nil {
				b.Fatal(err)
			}
			pb, _ := sender.OnSend(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				receiver.OnArrival(1, pb)
			}
		})
	}
}

func BenchmarkSimulationRun(b *testing.B) {
	for _, kind := range []core.Kind{core.KindBHMR, core.KindFDAS} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(kind, int64(i))
				cfg.N = 8
				cfg.Duration = 100
				if _, err := sim.Run(cfg, &workload.Random{MeanGap: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks: offline analyses ---

func BenchmarkRGraphBuild(b *testing.B) {
	p := minGlobalFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgraph.Build(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeTDVs(b *testing.B) {
	p := minGlobalFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgraph.ComputeTDVs(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckRDT(b *testing.B) {
	p := minGlobalFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgraph.CheckRDT(p, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterThroughput measures end-to-end runtime message cost
// (protocol + codec + transport + trace recording).
func BenchmarkClusterThroughput(b *testing.B) {
	c, err := rdt.NewCluster(rdt.ClusterConfig{N: 4, Protocol: rdt.BHMR})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop() //nolint:errcheck // benchmark cleanup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Node(0).Send(1, []byte("x")); err != nil {
			b.Fatal(err)
		}
		if i%256 == 0 {
			c.Quiesce()
		}
	}
	c.Quiesce()
}

// BenchmarkObsOverhead isolates the cost of the observability layer on
// the runtime's send/deliver hot path: the same workload with
// instrumentation off (the nil fast path), metrics only, and metrics
// plus event tracing. Comparing ns/op across the three sub-benchmarks
// bounds the instrumentation overhead (the metrics path is expected to
// stay within a few percent of "off").
func BenchmarkObsOverhead(b *testing.B) {
	variants := []struct {
		name   string
		obs    func() *rdt.MetricsRegistry
		tracer func() *rdt.EventTracer
	}{
		{"off", func() *rdt.MetricsRegistry { return nil }, func() *rdt.EventTracer { return nil }},
		{"metrics", rdt.NewMetricsRegistry, func() *rdt.EventTracer { return nil }},
		{"metrics+events", rdt.NewMetricsRegistry,
			func() *rdt.EventTracer { return rdt.NewEventTracer(rdt.DefaultEventCapacity) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			c, err := rdt.NewCluster(rdt.ClusterConfig{
				N: 4, Protocol: rdt.BHMR, Obs: v.obs(), Tracer: v.tracer(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop() //nolint:errcheck // benchmark cleanup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Node(0).Send(1, []byte("x")); err != nil {
					b.Fatal(err)
				}
				if i%256 == 0 {
					c.Quiesce()
				}
			}
			c.Quiesce()
		})
	}
}

// BenchmarkObsInstruments measures the raw per-operation cost of the
// instruments themselves, including the nil no-op path.
func BenchmarkObsInstruments(b *testing.B) {
	reg := rdt.NewMetricsRegistry()
	counter := reg.Counter("bench_counter_total")
	hist := reg.Histogram("bench_hist", nil)
	tracer := rdt.NewEventTracer(1024)
	b.Run("counter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counter.Inc()
		}
	})
	b.Run("counter-nil", func(b *testing.B) {
		var nr *rdt.MetricsRegistry
		c := nr.Counter("unused_total")
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hist.Observe(float64(i % 100))
		}
	})
	b.Run("tracer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tracer.Record(rdt.TraceEvent{Type: rdt.EventSend, Proc: i % 4})
		}
	})
}

// BenchmarkRGraphScaling measures the offline analyses as trace size
// grows (nodes here are checkpoints of the R-graph).
func BenchmarkRGraphScaling(b *testing.B) {
	for _, duration := range []float64{100, 400, 1600} {
		cfg := sim.DefaultConfig(core.KindBHMR, 47)
		cfg.N = 8
		cfg.Duration = duration
		res, err := sim.Run(cfg, &workload.Random{MeanGap: 1})
		if err != nil {
			b.Fatal(err)
		}
		p := res.Pattern
		b.Run(fmt.Sprintf("build/ckpts=%d", p.NumCheckpoints()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rgraph.Build(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("checkRDT/ckpts=%d", p.NumCheckpoints()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rgraph.CheckRDT(p, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExhaustiveExploration measures the explorer's schedule
// throughput on the two-process scenario.
func BenchmarkExhaustiveExploration(b *testing.B) {
	scripts := [][]rdt.ScenarioOp{
		{rdt.ScenarioSend(1), rdt.ScenarioCheckpoint(), rdt.ScenarioSend(1)},
		{rdt.ScenarioSend(0)},
	}
	// Collect the preceding scaling benchmarks' garbage so this
	// allocation-heavy loop starts from a clean heap regardless of suite
	// order.
	runtime.GC()
	b.ResetTimer()
	execs := 0
	for i := 0; i < b.N; i++ {
		res, err := rdt.Explore(rdt.BHMR, scripts, func([]rdt.ScheduleChoice, *rdt.Pattern) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		execs = res.Executions
	}
	b.ReportMetric(float64(execs), "schedules")
}

// --- Macro-benchmarks: service ingest throughput ---

// One op is one ingested event, pushed through the full service stack on
// loopback — a few concurrent drivers, batched traffic, waiting for
// application (not just acceptance) before the clock stops. Incremental
// RDT checking gets more expensive as a session's checkpoint history
// grows, so each driver rotates to a fresh session every
// benchIngestPerSession events (and evicts the finished one): the
// benchmark then measures the wire and ingest cost at a fixed, small
// session size instead of the checker's superlinear tail. Besides ns/op,
// each reports events/s; `rdtbench -mode throughput` gates that number
// against results/BENCH_9.json so the binary wire's speed advantage over
// JSON can't silently erode.
const (
	benchIngestDrivers    = 4
	benchIngestProcs      = 8
	benchIngestBatch      = 128
	benchIngestPerSession = 2048
)

func BenchmarkIngestThroughputStream(b *testing.B) {
	skipInShortBench(b)
	svc, err := service.New(service.Config{QueueDepth: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer drainService(b, svc)
	srv, err := stream.Serve("127.0.0.1:0", stream.Config{Service: svc})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := stream.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	b.ResetTimer()
	forEachBenchDriver(b, func(d, events int) error {
		return forEachBenchSession(d, events, func(id string, tr *stream.Traffic, n int) error {
			ch, err := client.Open(id, benchIngestProcs, "bench")
			if err != nil {
				return err
			}
			for sent := 0; sent < n; {
				c := min(benchIngestBatch, n-sent)
				// The channel retains each batch until it is acked (for
				// replay), so every Send gets a fresh slice.
				if err := ch.Send(tr.Next(nil, c)); err != nil {
					return err
				}
				sent += c
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := ch.Flush(ctx); err != nil {
				return err
			}
			if err := ch.Close(); err != nil {
				return err
			}
			svc.Evict(id, "bench")
			return nil
		})
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkIngestThroughputJSON(b *testing.B) {
	skipInShortBench(b)
	svc, err := service.New(service.Config{QueueDepth: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer drainService(b, svc)
	srv, err := service.Serve("127.0.0.1:0", svc)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	hc := &http.Client{Timeout: time.Minute}

	b.ResetTimer()
	forEachBenchDriver(b, func(d, events int) error {
		var batch []service.Event
		return forEachBenchSession(d, events, func(id string, tr *stream.Traffic, n int) error {
			body, _ := json.Marshal(map[string]any{"id": id, "n": benchIngestProcs})
			resp, err := hc.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				return fmt.Errorf("create %s: status %d", id, resp.StatusCode)
			}
			for sent := 0; sent < n; {
				c := min(benchIngestBatch, n-sent)
				batch = tr.Next(batch[:0], c)
				payload, err := json.Marshal(batch)
				if err != nil {
					return err
				}
				for {
					resp, err := hc.Post(base+"/v1/sessions/"+id+"/events", "application/json", bytes.NewReader(payload))
					if err != nil {
						return err
					}
					resp.Body.Close()
					if resp.StatusCode == http.StatusAccepted {
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						return fmt.Errorf("ingest %s: status %d", id, resp.StatusCode)
					}
					time.Sleep(2 * time.Millisecond)
				}
				sent += c
			}
			// flush=1 blocks until every accepted batch has been applied,
			// matching the stream benchmark's Flush.
			resp, err = hc.Get(base + "/v1/sessions/" + id + "/verdict?flush=1")
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("verdict %s: status %d", id, resp.StatusCode)
			}
			svc.Evict(id, "bench")
			return nil
		})
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// forEachBenchDriver splits b.N events across benchIngestDrivers
// concurrent drivers and fails the benchmark on the first driver error.
func forEachBenchDriver(b *testing.B, drive func(d, events int) error) {
	b.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, benchIngestDrivers)
	for d := 0; d < benchIngestDrivers; d++ {
		events := (b.N*(d+1))/benchIngestDrivers - (b.N*d)/benchIngestDrivers
		if events == 0 {
			continue
		}
		wg.Add(1)
		go func(d, events int) {
			defer wg.Done()
			errs <- drive(d, events)
		}(d, events)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// forEachBenchSession carves one driver's event share into sessions of at
// most benchIngestPerSession events each, with deterministic per-session
// traffic.
func forEachBenchSession(d, events int, run func(id string, tr *stream.Traffic, n int) error) error {
	for i := 0; events > 0; i++ {
		n := min(benchIngestPerSession, events)
		tr, err := stream.NewTraffic("random", benchIngestProcs, int64(d*1_000_003+i))
		if err != nil {
			return err
		}
		if err := run(fmt.Sprintf("bench-%d-%d", d, i), tr, n); err != nil {
			return err
		}
		events -= n
	}
	return nil
}

// skipInShortBench keeps the throughput benchmarks out of the ns/op
// suite (scripts/bench.sh runs that with -short): they gate on events/s
// separately, with the longer benchtime end-to-end rates need.
func skipInShortBench(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("ingest throughput gates separately; see scripts/bench.sh")
	}
}

func drainService(b *testing.B, svc *service.Service) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		b.Fatal(err)
	}
}
