# Tier-1 is the gate every change must keep green; tier-2 adds static
# analysis and the race detector (the observability layer is explicitly
# concurrent, so tier-2 is what validates it); the chaos tier replays the
# seeded fault-injection suite under the race detector.

GO ?= go

.PHONY: all test race vet chaos chaos-supervise serve-smoke fuzz-smoke check bench bench-baseline obs-bench clean

all: test

# Tier-1: build everything and run the full test suite.
test:
	$(GO) build ./...
	$(GO) test ./...

# Tier-2: vet + race-enabled tests across the module.
race: vet
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Chaos tier: the seeded fault-injection suite (fixed seed matrix — the
# fault schedules are reproducible) under the race detector: transport
# faults, reliable delivery, crash/restart, and end-to-end recovery.
chaos:
	$(GO) test -race -run 'Chaos|Crash|Reliable|Faulty|GiveUp|Partition' \
		./internal/transport/ ./internal/cluster/
	$(GO) test -race -run 'RunChaos' ./cmd/rdtsim/

# Supervised chaos tier: the self-healing suite under the race detector —
# heartbeat failure detection, autonomous recovery with retries and
# escalation, and the no-false-positive guarantee under injected delay.
chaos-supervise:
	$(GO) test -race -run 'Supervis' ./internal/cluster/ ./cmd/rdtsim/

# Service smoke: boot a real rdtserved daemon and drive it end to end
# over HTTP under the race detector — including 20 concurrent sessions
# with per-session batch/verdict parity against the batch analyzer.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./cmd/rdtserved/

# Fuzz smoke: a short bounded run of every fuzz target over untrusted
# decoder surfaces (cluster wire messages, trace JSON, service events).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeMsg' -fuzztime 10s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz 'FuzzLoad' -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeEvents' -fuzztime 10s ./internal/service/

# Everything a change must pass before review.
check: test race chaos chaos-supervise

# Run the benchmark suite and gate ns/op against the committed baseline
# (results/BENCH_4.json); bench-baseline rewrites the baseline.
bench:
	scripts/bench.sh

bench-baseline:
	BENCH_UPDATE=1 scripts/bench.sh

# Measure observability overhead on the runtime hot path.
obs-bench:
	$(GO) test -bench 'BenchmarkObs' -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
