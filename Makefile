# Tier-1 is the gate every change must keep green; tier-2 adds static
# analysis and the race detector (the observability layer is explicitly
# concurrent, so tier-2 is what validates it); the chaos tier replays the
# seeded fault-injection suite under the race detector.

GO ?= go

# Version stamping: `make build` binaries report the tag and commit via
# their -version flag. Plain `go build` keeps the "dev (unknown)"
# defaults, so test output stays independent of the checkout state.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS  = -X github.com/rdt-go/rdt/internal/version.Version=$(VERSION) \
           -X github.com/rdt-go/rdt/internal/version.Commit=$(COMMIT)

.PHONY: all build test race vet chaos chaos-supervise serve-smoke trace-smoke soak-smoke fuzz-smoke durability-smoke load-smoke shard-smoke check bench bench-baseline obs-bench clean

all: test

# Stamped binaries for all CLIs and daemons.
build:
	$(GO) build -ldflags "$(LDFLAGS)" -o bin/ ./cmd/...

# Tier-1: build everything and run the full test suite.
test:
	$(GO) build ./...
	$(GO) test ./...

# Tier-2: vet + race-enabled tests across the module.
race: vet
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Chaos tier: the seeded fault-injection suite (fixed seed matrix — the
# fault schedules are reproducible) under the race detector: transport
# faults, reliable delivery, crash/restart, and end-to-end recovery.
chaos:
	$(GO) test -race -run 'Chaos|Crash|Reliable|Faulty|GiveUp|Partition' \
		./internal/transport/ ./internal/cluster/
	$(GO) test -race -run 'RunChaos' ./cmd/rdtsim/

# Supervised chaos tier: the self-healing suite under the race detector —
# heartbeat failure detection, autonomous recovery with retries and
# escalation, and the no-false-positive guarantee under injected delay.
chaos-supervise:
	$(GO) test -race -run 'Supervis' ./internal/cluster/ ./cmd/rdtsim/

# Service smoke: boot a real rdtserved daemon and drive it end to end
# over HTTP under the race detector — including 20 concurrent sessions
# with per-session batch/verdict parity against the batch analyzer.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./cmd/rdtserved/

# Trace smoke: exercise the observability surface end to end under the
# race detector (flight recorder, causal spans, witness explain, golden
# timelines), then drive the real binaries: a simulation run writes a
# Chrome trace-event timeline and the checker explains the Figure 1
# violation with a highlighted witness.
trace-smoke:
	$(GO) test -race -count=1 -run 'Trace|Explain|Timeline|Witness|Flight|Span' \
		./internal/obs/ ./internal/cluster/ ./internal/trace/ \
		./internal/rgraph/ ./internal/service/ ./cmd/rdtsim/ ./cmd/rdtcheck/
	$(GO) run -ldflags "$(LDFLAGS)" ./cmd/rdtsim -protocol bhmr -workload ring \
		-n 4 -duration 60 -trace-out $(or $(TMPDIR),/tmp)/rdt-timeline.json
	grep -q '"traceEvents"' $(or $(TMPDIR),/tmp)/rdt-timeline.json
	$(GO) run -ldflags "$(LDFLAGS)" ./cmd/rdtcheck -figure1 -explain | grep 'witness:' >/dev/null

# Soak smoke: the deterministic chaos-scenario tier under the race
# detector — the full seed corpus of .rdts files, double-run transcript
# reproducibility, the golden replay, and a generated soak covering over
# an hour of simulated operation (virtual time makes the hour cost
# seconds of wall clock).
soak-smoke:
	$(GO) test -race -count=1 -run 'TestCorpus|TestGolden|TestSoak|TestGenerate|TestRun' \
		./internal/scenario/
	$(GO) run -ldflags "$(LDFLAGS)" ./cmd/rdtsim \
		-scenario internal/scenario/corpus/ring-under-drops.rdts | \
		grep -q 'all expectations held'

# Fuzz smoke: a short bounded run of every fuzz target over untrusted
# decoder surfaces (cluster wire messages, trace JSON, service events,
# WAL files fed back through the scanner, scenario files fed to the
# parser).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeMsg' -fuzztime 10s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz 'FuzzLoad' -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeEvents' -fuzztime 10s ./internal/service/
	$(GO) test -run '^$$' -fuzz 'FuzzWALReplay' -fuzztime 10s ./internal/wal/
	$(GO) test -run '^$$' -fuzz 'FuzzParse' -fuzztime 10s ./internal/scenario/

# Durability smoke: boot rdtserved with -data-dir, ingest a known
# stream, kill -9, restart on the same directory, and require the
# recovered verdict to be byte-identical (plus a real WAL replay). The
# in-process counterpart is the crash-point differential test:
# TestCrashPointDifferential in internal/service.
durability-smoke:
	./scripts/durability_smoke.sh

# Load smoke: boot rdtserved with both ingest wires and race rdtload
# over each — verdict digests must match across wires (differential
# parity) and the binary stream must sustain a multiple of the JSON
# path's events/sec (both numbers are printed).
load-smoke:
	./scripts/load_smoke.sh

# Shard smoke: boot a 3-member consistent-hash cluster behind
# rdtrouterd, remove one member and add a fresh one while rdtload
# streams — every displaced session is passivated, shipped, and
# reactivated live. The cluster's verdict digest must be bit-identical
# to an unsharded daemon's digest over the same workload, the removed
# member must drain to zero sessions, and the joiner must own at least
# one. The in-process counterparts are TestClusterChurnStress and the
# handoff-seam kill-point tests in internal/shard.
shard-smoke:
	./scripts/shard_smoke.sh

# Everything a change must pass before review.
check: test race chaos chaos-supervise soak-smoke load-smoke shard-smoke

# Run the benchmark suite and gate ns/op against the committed baseline
# (results/BENCH_4.json); bench-baseline rewrites the baseline.
bench:
	scripts/bench.sh

bench-baseline:
	BENCH_UPDATE=1 scripts/bench.sh

# Measure observability overhead on the runtime hot path.
obs-bench:
	$(GO) test -bench 'BenchmarkObs' -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
