# Tier-1 is the gate every change must keep green; tier-2 adds static
# analysis and the race detector (the observability layer is explicitly
# concurrent, so tier-2 is what validates it).

GO ?= go

.PHONY: all test race vet bench obs-bench clean

all: test

# Tier-1: build everything and run the full test suite.
test:
	$(GO) build ./...
	$(GO) test ./...

# Tier-2: vet + race-enabled tests across the module.
race: vet
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerate the evaluation benchmarks (reduced grid).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Measure observability overhead on the runtime hot path.
obs-bench:
	$(GO) test -bench 'BenchmarkObs' -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
