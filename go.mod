module github.com/rdt-go/rdt

go 1.22
