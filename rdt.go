package rdt

import (
	"io"
	"time"

	"github.com/rdt-go/rdt/internal/cluster"
	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/explore"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/recovery"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/scenario"
	"github.com/rdt-go/rdt/internal/sim"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/trace"
	"github.com/rdt-go/rdt/internal/transport"
	"github.com/rdt-go/rdt/internal/version"
	"github.com/rdt-go/rdt/internal/workload"
)

// Protocol selects a communication-induced checkpointing protocol.
type Protocol = core.Kind

// The checkpointing protocols, least conservative first. All except None
// guarantee the RDT property.
const (
	// None takes only basic checkpoints (uncoordinated baseline).
	None = core.KindNone
	// BCS is the Briatico–Ciuffoletti–Simoncini index-based protocol:
	// Z-cycle freedom (no useless checkpoints) without full RDT.
	BCS = core.KindBCS
	// BHMR is the paper's protocol: condition C1 ∨ C2 with full causal
	// sibling tracking — the least conservative of the family.
	BHMR = core.KindBHMR
	// BHMRNoSimple is published variant 1 (C1 ∨ C2', no simple vector).
	BHMRNoSimple = core.KindBHMRNoSimple
	// BHMRCausalOnly is published variant 2 (C1 alone, false diagonal).
	BHMRCausalOnly = core.KindBHMRCausalOnly
	// FDAS is Wang's Fixed-Dependency-After-Send.
	FDAS = core.KindFDAS
	// FDI is Wang's Fixed-Dependency-Interval.
	FDI = core.KindFDI
	// NRAS is Russell's No-Receive-After-Send.
	NRAS = core.KindNRAS
	// CBR is Checkpoint-Before-Receive.
	CBR = core.KindCBR
	// CAS is Wu–Fuchs Checkpoint-After-Send.
	CAS = core.KindCAS
)

// Protocols returns every protocol, least conservative first.
func Protocols() []Protocol { return core.Kinds() }

// RDTProtocols returns the protocols that guarantee the RDT property.
func RDTProtocols() []Protocol { return core.RDTKinds() }

// ParseProtocol maps a protocol name ("bhmr", "fdas", ...) to its value.
func ParseProtocol(name string) (Protocol, error) { return core.ParseKind(name) }

// ProtocolNames lists every protocol's conventional name, least
// conservative first — the single source the tools, metric labels, and
// error messages draw from (each name is Protocol.String()).
func ProtocolNames() []string {
	kinds := core.Kinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return names
}

// ProtocolInstance is the per-process protocol state machine, for
// embedding the protocols into an engine of your own. See NewCluster for
// the ready-made runtime.
type ProtocolInstance = core.Instance

// CheckpointRecord and Sink carry checkpoint announcements out of a
// protocol instance.
type (
	CheckpointRecord = core.CheckpointRecord
	Sink             = core.Sink
)

// NewProtocolInstance creates a protocol state machine for process proc of
// an n-process system; sink (may be nil) observes every checkpoint taken.
func NewProtocolInstance(p Protocol, proc, n int, sink Sink) (ProtocolInstance, error) {
	return core.New(p, proc, n, sink)
}

// Model types: checkpoint and communication patterns and their elements.
type (
	// Pattern is a recorded checkpoint and communication pattern.
	Pattern = model.Pattern
	// Checkpoint is one local checkpoint of a pattern.
	Checkpoint = model.Checkpoint
	// CkptID names a local checkpoint C_{proc,index}.
	CkptID = model.CkptID
	// GlobalCheckpoint holds one checkpoint index per process.
	GlobalCheckpoint = model.GlobalCheckpoint
	// PatternBuilder constructs patterns event by event.
	PatternBuilder = model.Builder
	// ProcID identifies a process (0..N-1).
	ProcID = model.ProcID
	// CheckpointKind classifies checkpoints (initial, basic, forced,
	// final).
	CheckpointKind = model.CheckpointKind
)

// Checkpoint kinds, re-exported for pattern inspection.
const (
	KindInitial = model.KindInitial
	KindBasic   = model.KindBasic
	KindForced  = model.KindForced
	KindFinal   = model.KindFinal
)

// NewPatternBuilder returns a builder for hand-constructing patterns.
func NewPatternBuilder(n int) *PatternBuilder { return model.NewBuilder(n) }

// Figure1 returns the reference pattern of Figure 1 of the paper.
func Figure1() (*Pattern, error) { return trace.Figure1() }

// SaveTrace and LoadTrace serialize patterns as JSON.
func SaveTrace(w io.Writer, p *Pattern) error { return trace.Save(w, p) }

// LoadTrace reads and validates a JSON pattern.
func LoadTrace(r io.Reader) (*Pattern, error) { return trace.Load(r) }

// SaveTraceFile writes a pattern to a JSON file.
func SaveTraceFile(path string, p *Pattern) error { return trace.SaveFile(path, p) }

// LoadTraceFile reads a pattern from a JSON file.
func LoadTraceFile(path string) (*Pattern, error) { return trace.LoadFile(path) }

// Analysis types from the rollback-dependency theory.
type (
	// RGraph is the rollback-dependency graph with its reachability
	// relation.
	RGraph = rgraph.Graph
	// RDTReport is the outcome of an offline RDT check.
	RDTReport = rgraph.Report
	// RDTViolation is one untrackable R-path.
	RDTViolation = rgraph.Violation
	// Chains analyzes causal and zigzag message chains.
	Chains = rgraph.Chains
)

// BuildRGraph constructs the R-graph of a pattern and precomputes its
// reachability relation.
func BuildRGraph(p *Pattern) (*RGraph, error) { return rgraph.Build(p) }

// NewChains builds the message-chain (zigzag/causal) analysis of a
// pattern.
func NewChains(p *Pattern) (*Chains, error) { return rgraph.NewChains(p) }

// CheckRDT verifies the Rollback-Dependency Trackability property of a
// pattern, reporting up to maxViolations untrackable R-paths (<= 0 for a
// default cap).
func CheckRDT(p *Pattern, maxViolations int) (*RDTReport, error) {
	return rgraph.CheckRDT(p, maxViolations)
}

// VerifyRecordedTDVs checks the dependency vectors recorded with the
// pattern's checkpoints against an offline recomputation.
func VerifyRecordedTDVs(p *Pattern) error { return rgraph.VerifyRecordedTDVs(p) }

// IsConsistent reports whether a global checkpoint has no orphan message.
func IsConsistent(p *Pattern, g GlobalCheckpoint) (bool, error) { return rgraph.IsConsistent(p, g) }

// MinConsistentGlobal returns the minimum consistent global checkpoint
// containing all the given checkpoints. Under RDT, for a single
// checkpoint, it equals the dependency vector recorded with it
// (Corollary 4.5).
func MinConsistentGlobal(p *Pattern, set ...CkptID) (GlobalCheckpoint, error) {
	return rgraph.MinConsistentContaining(p, set...)
}

// MaxConsistentGlobal returns the maximum consistent global checkpoint
// containing all the given checkpoints.
func MaxConsistentGlobal(p *Pattern, set ...CkptID) (GlobalCheckpoint, error) {
	return rgraph.MaxConsistentContaining(p, set...)
}

// TraceRecoveryLine computes, from the full trace, the maximum consistent
// global checkpoint dominated by the given per-process bounds.
func TraceRecoveryLine(p *Pattern, bounds GlobalCheckpoint) (GlobalCheckpoint, error) {
	return rgraph.RecoveryLine(p, bounds)
}

// Runtime types: the goroutine-per-process cluster.
type (
	// Cluster runs N protocol-equipped processes.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes a cluster.
	ClusterConfig = cluster.Config
	// Node is the handle of one cluster process.
	Node = cluster.Node
	// NodeStatus is a point-in-time view of a node's protocol state.
	NodeStatus = cluster.Status
)

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Transport types: how frames move between cluster processes.
type (
	// Transport moves frames between processes.
	Transport = transport.Transport
	// Frame is one addressed, opaque message.
	Frame = transport.Frame
)

// NewLocalTransport returns an in-process transport; maxDelay > 0 adds a
// random delivery delay.
func NewLocalTransport(maxDelay time.Duration) Transport { return transport.NewLocal(maxDelay) }

// NewTCPTransport returns a loopback TCP transport for n processes.
func NewTCPTransport(n int) (Transport, error) { return transport.NewTCP(n) }

// Fault injection and reliable delivery: transport decorators for testing
// and surviving lossy links. The canonical stacking is
//
//	rdt.Reliable(rdt.WithFaults(inner, faultCfg), reliableCfg)
//
// — retries above the faults they repair; the cluster adds its
// observability decorator outermost.
type (
	// FaultyTransport injects seeded drop/duplicate/reorder/send-error
	// faults and dynamic pair-wise partitions into any Transport.
	FaultyTransport = transport.Faulty
	// FaultConfig parameterizes WithFaults.
	FaultConfig = transport.FaultConfig
	// FaultProbs is one link's (or the default) fault mix.
	FaultProbs = transport.FaultProbs
	// TransportLink addresses one directed sender→receiver channel.
	TransportLink = transport.Link
	// ReliableTransport adds retransmission, acknowledgements, and
	// receiver-side deduplication over an unreliable Transport, restoring
	// exactly-once delivery.
	ReliableTransport = transport.ReliableTransport
	// ReliableConfig parameterizes Reliable.
	ReliableConfig = transport.ReliableConfig
)

// WithFaults wraps a transport with the seeded fault injector.
func WithFaults(inner Transport, cfg FaultConfig) *FaultyTransport {
	return transport.WithFaults(inner, cfg)
}

// Reliable wraps an unreliable transport with retries, acks, and dedup.
func Reliable(inner Transport, cfg ReliableConfig) *ReliableTransport {
	return transport.Reliable(inner, cfg)
}

// Transport error surfaces.
var (
	// ErrInjected is the transient send error the fault injector returns.
	ErrInjected = transport.ErrInjected
	// ErrGiveUp is reported through ReliableConfig.OnGiveUp when a frame
	// exhausts its retries.
	ErrGiveUp = transport.ErrGiveUp
	// ErrCrashed is returned by operations on a crashed, not yet
	// restarted process.
	ErrCrashed = cluster.ErrCrashed
	// ErrNotCrashed is returned by Cluster.Restart for a running process.
	ErrNotCrashed = cluster.ErrNotCrashed
	// ErrCheckpointCorrupt is wrapped into store read errors for a
	// present-but-undecodable checkpoint; recovery quarantines such
	// checkpoints and falls back one index.
	ErrCheckpointCorrupt = storage.ErrCorrupt
)

// Storage types: checkpoint persistence.
type (
	// Store persists checkpoints.
	Store = storage.Store
	// StoredCheckpoint is one persisted checkpoint.
	StoredCheckpoint = storage.Checkpoint
)

// NewMemoryStore returns an in-memory checkpoint store.
func NewMemoryStore() Store { return storage.NewMemory() }

// NewFileStore returns a file-backed checkpoint store rooted at dir.
func NewFileStore(dir string) (Store, error) { return storage.NewFile(dir) }

// Recovery types: rollback from stored checkpoints.
type (
	// RecoveryManager computes recovery lines over a checkpoint store.
	RecoveryManager = recovery.Manager
	// RecoveryPlan is the outcome of a recovery-line computation.
	RecoveryPlan = recovery.Plan
	// RecoverOptions parameterizes Cluster.Recover.
	RecoverOptions = cluster.RecoverOptions
	// RecoverResult reports what one Cluster.Recover did.
	RecoverResult = cluster.RecoverResult
	// LostMessage is a send that was never delivered (crash or lossy
	// link), reported by Cluster.StopLossy.
	LostMessage = model.LostMessage
)

// NewRecoveryManager creates a recovery manager for n processes over a
// store.
func NewRecoveryManager(store Store, n int) (*RecoveryManager, error) {
	return recovery.NewManager(store, n)
}

// Simulation types: the deterministic discrete-event simulator.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of a run.
	SimResult = sim.Result
	// Workload drives the communication of a run.
	Workload = sim.Workload
	// SimEngine is the event loop handed to workloads.
	SimEngine = sim.Engine
)

// DefaultSimConfig returns the baseline simulation parameters.
func DefaultSimConfig(p Protocol, seed int64) SimConfig { return sim.DefaultConfig(p, seed) }

// Simulate executes one deterministic simulation.
func Simulate(cfg SimConfig, w Workload) (*SimResult, error) { return sim.Run(cfg, w) }

// WorkloadByName constructs one of the named communication environments
// ("random", "groups", "client-server", "ring", "burst").
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// WorkloadNames lists the registered environments.
func WorkloadNames() []string { return workload.Names() }

// InTransit returns the messages in the channels at the cut g (sent at or
// before the sender's entry, delivered after the receiver's) — the set a
// message log must replay after rolling back to g.
func InTransit(p *Pattern, g GlobalCheckpoint) ([]Message, error) { return rgraph.InTransit(p, g) }

// Message is one application message of a pattern.
type Message = model.Message

// RollbackClosure returns every checkpoint discarded when rolling back
// past the given ones: the targets plus everything R-path-reachable from
// them.
func RollbackClosure(g *RGraph, targets ...CkptID) []CkptID {
	return g.RollbackClosure(targets...)
}

// PatternPrefix returns the sub-pattern as of the consistent cut g: the
// history a recovered system keeps after rolling back to g (in-transit
// messages dropped).
func PatternPrefix(p *Pattern, g GlobalCheckpoint) (*Pattern, error) { return p.Prefix(g) }

// ReplayMessage is one in-transit message to re-send after a rollback.
type ReplayMessage = recovery.ReplayMessage

// ReplaySet computes the in-transit messages at a recovery line, with
// payloads from the message log (for example Cluster.Payload).
func ReplaySet(p *Pattern, line GlobalCheckpoint, payload func(id int) ([]byte, bool)) ([]ReplayMessage, error) {
	return recovery.ReplaySet(p, line, payload)
}

// Exhaustive exploration: verify protocol properties over every
// interleaving of a small scripted scenario (model checking in miniature).
type (
	// ScenarioOp is one scripted action of an exploration scenario.
	ScenarioOp = explore.Op
	// ScheduleChoice is one step of an explored schedule.
	ScheduleChoice = explore.Choice
	// ExploreResult summarizes an exhaustive exploration.
	ExploreResult = explore.Result
)

// ScenarioSend returns a scripted send to the given process.
func ScenarioSend(to int) ScenarioOp { return explore.Send(to) }

// ScenarioCheckpoint returns a scripted basic checkpoint.
func ScenarioCheckpoint() ScenarioOp { return explore.Checkpoint() }

// Explore enumerates every interleaving of the per-process scripts with
// every admissible delivery order, replays the protocol over each, and
// calls check on every complete execution.
func Explore(p Protocol, scripts [][]ScenarioOp, check func(schedule []ScheduleChoice, pattern *Pattern) error) (*ExploreResult, error) {
	return explore.Run(p, scripts, check)
}

// Self-healing: heartbeat failure detection plus autonomous supervised
// recovery over a running cluster.
type (
	// Supervisor watches a cluster through heartbeat probes and drives
	// Cluster.Recover autonomously when a process crashes, wedges, or
	// becomes unreachable.
	Supervisor = cluster.Supervisor
	// SupervisorConfig parameterizes Supervise.
	SupervisorConfig = cluster.SupervisorConfig
)

// The suspicion reasons a supervisor reports (metric label values and
// event details).
const (
	SuspectCrash       = cluster.SuspectCrash
	SuspectTimeout     = cluster.SuspectTimeout
	SuspectUnreachable = cluster.SuspectUnreachable
)

// Supervise attaches a failure detector and autonomous recovery driver
// to a running cluster (which must log payloads). After a failover,
// Supervisor.Cluster returns the live incarnation.
func Supervise(c *Cluster, cfg SupervisorConfig) (*Supervisor, error) {
	return cluster.Supervise(c, cfg)
}

// Resume starts the next incarnation after a rollback: a fresh cluster
// into which the in-transit messages of the previous incarnation are
// replayed from the message log. The application must have reinstalled
// the recovery line's state snapshots first. Cluster.Recover packages
// the whole crash → line → restore → Resume sequence.
func Resume(cfg ClusterConfig, replay []ReplayMessage) (*Cluster, error) {
	return cluster.Resume(cfg, replay)
}

// Observability types: metrics, structured event tracing, and live
// introspection. A MetricsRegistry plugged into ClusterConfig.Obs or
// SimConfig.Obs collects counters, gauges, and histograms from every
// layer (protocols, runtime, transport, recovery); an EventTracer
// records typed events (sends, deliveries, checkpoints with the
// predicate that forced them, rollbacks, transport send errors) in a
// bounded ring. ServeObs exposes both over HTTP.
type (
	// MetricsRegistry holds named counters, gauges, and histograms. A
	// nil registry disables instrumentation at near-zero cost.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every series.
	MetricsSnapshot = obs.Snapshot
	// MetricSeries is one series of a snapshot.
	MetricSeries = obs.Metric
	// EventTracer is a bounded ring buffer of structured events with
	// logical timestamps.
	EventTracer = obs.Tracer
	// TraceEvent is one structured event.
	TraceEvent = obs.Event
	// EventType classifies a structured trace event.
	EventType = obs.EventType
	// ObsServer serves /metrics (Prometheus text format),
	// /debug/events (JSON tail), and /debug/vars (expvar).
	ObsServer = obs.Server
)

// DefaultEventCapacity is the tracer ring size the cmd tools use.
const DefaultEventCapacity = obs.DefaultTracerCapacity

// The event types a tracer records.
const (
	EventSend             = obs.EventSend
	EventDeliver          = obs.EventDeliver
	EventBasicCheckpoint  = obs.EventBasicCheckpoint
	EventForcedCheckpoint = obs.EventForcedCheckpoint
	EventRollback         = obs.EventRollback
	EventSendError        = obs.EventSendError
	EventFault            = obs.EventFault
	EventRetry            = obs.EventRetry
	EventGiveUp           = obs.EventGiveUp
	EventCrash            = obs.EventCrash
	EventRestart          = obs.EventRestart
	EventRecovery         = obs.EventRecovery
	EventStoreError       = obs.EventStoreError
	EventSuspicion        = obs.EventSuspicion
	EventEscalation       = obs.EventEscalation
	EventQuarantine       = obs.EventQuarantine
	EventViolation        = obs.EventViolation
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventTracer returns a tracer retaining the last capacity events.
func NewEventTracer(capacity int) *EventTracer { return obs.NewTracer(capacity) }

// ServeObs starts an HTTP introspection server on addr (":0" picks an
// ephemeral port; see ObsServer.Addr). Either argument may be nil.
// Options add endpoints: WithProfiling mounts /debug/pprof and runtime
// gauges, WithFlightRecorder mounts /debug/timeline.
func ServeObs(addr string, reg *MetricsRegistry, tr *EventTracer, opts ...ObsServerOption) (*ObsServer, error) {
	return obs.Serve(addr, reg, tr, opts...)
}

// Violation witnesses: minimal concrete evidence for RDT violations.
type (
	// RDTWitness is a minimal message chain realizing one untrackable
	// R-path: the zigzag a dependency vector cannot track.
	RDTWitness = rgraph.Witness
	// WitnessHop is one message of a witness chain.
	WitnessHop = rgraph.Hop
	// WitnessExplainer extracts minimal witnesses for the violations of
	// one pattern (amortizing the chain-continuation precomputation).
	WitnessExplainer = rgraph.Explainer
)

// ExplainRDT checks the RDT property and derives a minimal witness for
// each violation found (up to maxViolations; <= 0 for a default cap).
func ExplainRDT(p *Pattern, maxViolations int) (*RDTReport, []*RDTWitness, error) {
	return rgraph.Explain(p, maxViolations)
}

// NewWitnessExplainer precomputes the chain-continuation relation of a
// pattern for repeated witness extraction.
func NewWitnessExplainer(p *Pattern) (*WitnessExplainer, error) { return rgraph.NewExplainer(p) }

// VerifyWitness independently re-checks a witness against a pattern:
// hops must be real messages forming a chain from the violation's source
// to its target with at least one non-causal continuation, and the pair
// must not be causally doubled.
func VerifyWitness(p *Pattern, w *RDTWitness) error { return rgraph.VerifyWitness(p, w) }

// Causal tracing: spans in a bounded flight recorder, exported as Chrome
// trace-event JSON (chrome://tracing, Perfetto). A FlightRecorder in
// ClusterConfig.Flight records one span per send, delivery, checkpoint
// write, and recovery step, with deliveries parented to the send that
// caused them across processes.
type (
	// FlightRecorder is a bounded ring of spans.
	FlightRecorder = obs.FlightRecorder
	// Span is one operation of a causal trace.
	Span = obs.Span
	// SpanKind classifies spans.
	SpanKind = obs.SpanKind
	// ObsServerOption configures ServeObs.
	ObsServerOption = obs.ServerOption
)

// The span kinds a flight recorder holds.
const (
	SpanSend       = obs.SpanSend
	SpanDeliver    = obs.SpanDeliver
	SpanForced     = obs.SpanForced
	SpanCheckpoint = obs.SpanCheckpoint
	SpanRecovery   = obs.SpanRecovery
	SpanRollback   = obs.SpanRollback
	SpanSeal       = obs.SpanSeal
)

// DefaultFlightCapacity is the flight-recorder ring size the cmd tools
// use.
const DefaultFlightCapacity = obs.DefaultFlightCapacity

// NewFlightRecorder returns a recorder retaining the last capacity spans
// (<= 0 for DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// WriteChromeTrace renders spans as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error { return obs.WriteChromeTrace(w, spans) }

// PatternTimeline converts a recorded pattern into spans on a
// deterministic logical clock — the offline twin of the live flight
// recorder.
func PatternTimeline(p *Pattern) []Span { return trace.Timeline(p) }

// WritePatternTimeline renders a pattern's logical timeline as Chrome
// trace-event JSON.
func WritePatternTimeline(w io.Writer, p *Pattern) error { return trace.WriteTimeline(w, p) }

// WithProfiling mounts /debug/pprof and periodic runtime gauges
// (goroutines, heap, GC) on the observability server.
func WithProfiling() ObsServerOption { return obs.WithProfiling() }

// WithFlightRecorder mounts /debug/timeline serving the recorder's
// spans as Chrome trace-event JSON.
func WithFlightRecorder(f *FlightRecorder) ObsServerOption { return obs.WithFlight(f) }

// Chaos scenarios: a line-oriented text format (.rdts) describing a
// cluster run — topology, protocol, traffic, a fault schedule at virtual
// timestamps, and expected outcomes — executed deterministically under a
// virtual clock. The same file and seed replay the same run, byte for
// byte, and every run cross-checks the batch verdict against an online
// replay.
type (
	// ChaosScenario is one parsed .rdts scenario.
	ChaosScenario = scenario.Scenario
	// ChaosResult is what one scenario run produced: verdict, pattern,
	// delivery and loss counts, recovered processes, and the transcript.
	ChaosResult = scenario.Result
)

// ParseChaosFile reads one chaos scenario from a .rdts file.
func ParseChaosFile(path string) (*ChaosScenario, error) { return scenario.ParseFile(path) }

// ParseChaos reads one chaos scenario from r.
func ParseChaos(r io.Reader) (*ChaosScenario, error) { return scenario.Parse(r) }

// RunChaos executes a chaos scenario to completion under a virtual
// clock. The error reports a harness failure; violated expectations are
// listed in ChaosResult.Failures.
func RunChaos(sc *ChaosScenario) (*ChaosResult, error) { return scenario.Run(sc) }

// GenerateChaos builds a random but fully seed-determined chaos
// scenario spanning the given stretch of virtual time.
func GenerateChaos(seed int64, span time.Duration) *ChaosScenario {
	return scenario.Generate(seed, span)
}

// Build identity, stamped by the Makefile at link time ("dev"/"unknown"
// in plain go-build binaries).
var (
	// BuildVersion is the release tag of this build.
	BuildVersion = version.Version
	// BuildCommit is the git revision of this build.
	BuildCommit = version.Commit
)
