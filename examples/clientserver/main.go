// Command clientserver reproduces the paper's client/server environment
// in simulation and compares the forced-checkpoint overhead of the whole
// protocol hierarchy on it: a client issues requests to a chain of
// servers, each server forwards with probability 1/2 or replies, and
// replies cascade back. Because every message's causal past contains
// almost the whole computation, this environment maximizes what the
// smarter protocols can learn from piggybacks — and the gap between the
// paper's protocol and FDAS is at its widest.
package main

import (
	"fmt"
	"log"

	rdt "github.com/rdt-go/rdt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 2026
	fmt.Println("client/server chain, 8 processes, simulated horizon 800")
	fmt.Println()
	fmt.Printf("%-8s %9s %9s %9s %9s %6s\n", "protocol", "messages", "basic", "forced", "R=f/b", "RDT")

	for _, protocol := range rdt.RDTProtocols() {
		w, err := rdt.WorkloadByName("client-server")
		if err != nil {
			return err
		}
		cfg := rdt.DefaultSimConfig(protocol, seed)
		cfg.N = 8
		cfg.Duration = 800
		cfg.BasicMean = 8

		res, err := rdt.Simulate(cfg, w)
		if err != nil {
			return fmt.Errorf("simulate %v: %w", protocol, err)
		}
		report, err := rdt.CheckRDT(res.Pattern, 1)
		if err != nil {
			return fmt.Errorf("check %v: %w", protocol, err)
		}
		fmt.Printf("%-8v %9d %9d %9d %9.3f %6v\n",
			protocol, res.Stats.Messages, res.Stats.Basic, res.Stats.Forced,
			res.Stats.ForcedPerBasic(), report.RDT)
	}

	fmt.Println()
	fmt.Println("same run without any coordination (the baseline the paper argues against):")
	w, err := rdt.WorkloadByName("client-server")
	if err != nil {
		return err
	}
	cfg := rdt.DefaultSimConfig(rdt.None, seed)
	cfg.N = 8
	cfg.Duration = 800
	cfg.BasicMean = 8
	res, err := rdt.Simulate(cfg, w)
	if err != nil {
		return err
	}
	report, err := rdt.CheckRDT(res.Pattern, 3)
	if err != nil {
		return err
	}
	fmt.Printf("uncoordinated run satisfies RDT: %v\n", report.RDT)
	for _, v := range report.Violations {
		fmt.Printf("  untrackable rollback dependency: %v\n", v)
	}
	return nil
}
