// Command kvstore is the "downstream application" showcase: a sharded
// in-memory key/value store whose replicas run on the RDT runtime. Writes
// are routed to the shard owner and gossiped to a backup, every node
// persists checkpoints (with dependency vectors) to disk, and the store
// survives a crash: the recovery manager computes the recovery line from
// the stored vectors, the shards reload their snapshots, in-transit
// writes are replayed from the message log, and a second incarnation
// finishes the workload without losing acknowledged data from before the
// line.
package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"sort"
	"sync"

	rdt "github.com/rdt-go/rdt"
)

const nodes = 4

// kv is one node's shard: the keys it owns plus backups it holds for its
// predecessor.
type kv struct {
	mu     sync.Mutex
	shards []map[string]string
}

func newKV() *kv {
	s := &kv{shards: make([]map[string]string, nodes)}
	for i := range s.shards {
		s.shards[i] = make(map[string]string)
	}
	return s
}

// command is the replicated operation: set a key on the owner, then
// gossip to the backup.
type command struct {
	Key    string `json:"key"`
	Value  string `json:"value"`
	Backup bool   `json:"backup"`
}

func owner(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32()) % nodes
}

func (s *kv) apply(node *rdt.Node, payload []byte) {
	var cmd command
	if err := json.Unmarshal(payload, &cmd); err != nil {
		return
	}
	s.mu.Lock()
	s.shards[node.Proc()][cmd.Key] = cmd.Value
	s.mu.Unlock()
	if !cmd.Backup {
		// Gossip to the successor as backup; the piggyback keeps the
		// cross-shard dependency trackable.
		cmd.Backup = true
		data, err := json.Marshal(cmd)
		if err != nil {
			return
		}
		_ = node.Send((node.Proc()+1)%nodes, data)
	}
}

// snapshot serializes one node's shard state for checkpointing.
func (s *kv) snapshot(proc int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(s.shards[proc])
	if err != nil {
		return nil
	}
	return data
}

func (s *kv) install(proc int, state []byte) {
	shard := make(map[string]string)
	if len(state) > 0 {
		_ = json.Unmarshal(state, &shard)
	}
	s.mu.Lock()
	s.shards[proc] = shard
	s.mu.Unlock()
}

func (s *kv) dump(proc int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.shards[proc]))
	for k := range s.shards[proc] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s ", k, s.shards[proc][k])
	}
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "rdt-kvstore-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := rdt.NewFileStore(dir)
	if err != nil {
		return err
	}

	db := newKV()
	// One registry and tracer observe both incarnations and the recovery
	// in between; /metrics and /debug/events stay live throughout.
	reg := rdt.NewMetricsRegistry()
	tracer := rdt.NewEventTracer(rdt.DefaultEventCapacity)
	srv, err := rdt.ServeObs("127.0.0.1:0", reg, tracer)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("observability: http://%s/metrics\n", srv.Addr())

	cfg := rdt.ClusterConfig{
		N:           nodes,
		Protocol:    rdt.BHMR,
		Store:       store,
		Snapshot:    db.snapshot,
		LogPayloads: true,
		Obs:         reg,
		Tracer:      tracer,
		Handler: func(node *rdt.Node, _ int, payload []byte) {
			db.apply(node, payload)
		},
	}
	c, err := rdt.NewCluster(cfg)
	if err != nil {
		return err
	}

	// Drive a write workload from node 0 (the "gateway"): route each SET
	// to its shard owner; take periodic checkpoints.
	write := func(c *rdt.Cluster, key, value string) error {
		cmd := command{Key: key, Value: value}
		data, err := json.Marshal(cmd)
		if err != nil {
			return err
		}
		dst := owner(key)
		gateway := 0
		if dst == gateway {
			gateway = 1
		}
		return c.Node(gateway).Send(dst, data)
	}
	for i := 0; i < 24; i++ {
		if err := write(c, fmt.Sprintf("key-%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			return err
		}
		if i%6 == 5 {
			if err := c.Node(i % nodes).Checkpoint(); err != nil {
				return err
			}
		}
	}
	c.Quiesce()
	metrics, err := c.Metrics()
	if err != nil {
		return err
	}
	pattern, err := c.Stop()
	if err != nil {
		return err
	}
	fmt.Printf("incarnation 1: %d messages, %d basic + %d forced checkpoints, %d piggyback bytes\n",
		metrics.Sent, metrics.Basic, metrics.Forced, metrics.PiggybackBytes)

	// ---- Node 2 crashes. ----
	mgr, err := rdt.NewRecoveryManager(store, nodes)
	if err != nil {
		return err
	}
	plan, err := mgr.Observe(reg, tracer).AfterCrash(2)
	if err != nil {
		return err
	}
	fmt.Printf("crash of node 2: recovery line %v, rollback depth %v\n", plan.Line, plan.Depth)

	states, err := mgr.Restore(plan.Line)
	if err != nil {
		return err
	}
	for _, cp := range states {
		db.install(cp.Proc, cp.State)
	}
	replay, err := rdt.ReplaySet(pattern, plan.Line, c.Payload)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d in-transit writes from the message log\n", len(replay))

	// ---- Incarnation 2: finish the workload. ----
	store2, err := rdt.NewFileStore(dir + "-inc2")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir + "-inc2")
	cfg.Store = store2
	c2, err := rdt.Resume(cfg, replay)
	if err != nil {
		return err
	}
	for i := 24; i < 32; i++ {
		if err := write(c2, fmt.Sprintf("key-%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			return err
		}
	}
	c2.Quiesce()
	pattern2, err := c2.Stop()
	if err != nil {
		return err
	}
	report, err := rdt.CheckRDT(pattern2, 1)
	if err != nil {
		return err
	}
	fmt.Printf("incarnation 2: %d messages, RDT: %v\n", len(pattern2.Messages), report.RDT)
	for i := 0; i < nodes; i++ {
		fmt.Printf("  shard %d: %s\n", i, db.dump(i))
	}

	// The registry spans the whole story: both incarnations' checkpoints
	// with the predicate that forced each one, the recovery, the replay.
	snap := reg.Snapshot()
	fmt.Printf("observed: %d basic + %d forced checkpoints, %d recoveries, %d replayed writes\n",
		snap.CounterValue("rdt_checkpoints_total", "protocol", "bhmr", "kind", "basic"),
		snap.CounterValue("rdt_checkpoints_total", "protocol", "bhmr", "kind", "forced"),
		snap.CounterValue("rdt_recoveries_total"),
		snap.CounterValue("rdt_replayed_messages_total"))
	for _, m := range snap.Metrics {
		if m.Name == "rdt_forced_checkpoints_total" {
			fmt.Printf("  forced by %s: %d\n", m.Labels[1], m.Value)
		}
	}
	return nil
}
