// Command breakpoint demonstrates the distributed-debugging application
// of the RDT property: causal distributed breakpoints. To inspect the
// system state "when process p reached checkpoint C", the debugger needs
// the minimum consistent global checkpoint containing C — the earliest
// global state that includes C and every effect C depends on. Under the
// paper's protocol that global checkpoint is read directly off the
// dependency vector recorded with C (Corollary 4.5), with no graph
// search; this program shows both the O(1) lookup and the brute-force
// verification, plus the maximum consistent global checkpoint used for
// output commit.
package main

import (
	"fmt"
	"log"

	rdt "github.com/rdt-go/rdt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := rdt.WorkloadByName("groups")
	if err != nil {
		return err
	}
	cfg := rdt.DefaultSimConfig(rdt.BHMR, 4242)
	cfg.N = 6
	cfg.Duration = 250
	cfg.BasicMean = 6
	res, err := rdt.Simulate(cfg, w)
	if err != nil {
		return err
	}
	p := res.Pattern
	fmt.Printf("debuggee trace: %+v\n\n", p.Stats())

	// Place a breakpoint at the middle checkpoint of process 2.
	target := rdt.CkptID{Proc: 2, Index: len(p.Checkpoints[2]) / 2}
	ck, err := p.Checkpoint(target)
	if err != nil {
		return err
	}

	fmt.Printf("breakpoint at %v (%v checkpoint)\n", target, ck.Kind)
	fmt.Printf("on-the-fly minimum global checkpoint (recorded TDV): %v\n", ck.TDV)

	min, err := rdt.MinConsistentGlobal(p, target)
	if err != nil {
		return err
	}
	fmt.Printf("brute-force minimum over the full trace:             %v\n", min)
	fmt.Printf("Corollary 4.5 agreement: %v\n\n", min.Equal(rdt.GlobalCheckpoint(ck.TDV)))

	ok, err := rdt.IsConsistent(p, min)
	if err != nil {
		return err
	}
	fmt.Printf("breakpoint cut is a consistent global state: %v\n", ok)

	// The dual bound: the latest global state still containing the
	// breakpoint (everything past it can be committed).
	max, err := rdt.MaxConsistentGlobal(p, target)
	if err != nil {
		return err
	}
	fmt.Printf("maximum consistent global checkpoint containing it:  %v\n\n", max)

	// The debugger can restore any checkpoint pair inside [min, max]; show
	// which checkpoints of process 4 are compatible with the breakpoint.
	chains, err := rdt.NewChains(p)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoints of P4 that can share a consistent global state with %v:\n  ", target)
	for x := 0; x < len(p.Checkpoints[4]); x++ {
		other := rdt.CkptID{Proc: 4, Index: x}
		if chains.CanExtend([]rdt.CkptID{target, other}) {
			fmt.Printf("C{4,%d} ", x)
		}
	}
	fmt.Println()
	return nil
}
