// Command quickstart is the smallest complete use of the library: run a
// few processes on the concurrent runtime under the paper's protocol,
// exchange messages, take independent checkpoints, and certify offline
// that the recorded pattern satisfies Rollback-Dependency Trackability.
package main

import (
	"fmt"
	"log"

	rdt "github.com/rdt-go/rdt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 4

	// Every delivery triggers the handler in the receiving process's
	// goroutine; this little application forwards each token once.
	c, err := rdt.NewCluster(rdt.ClusterConfig{
		N:        n,
		Protocol: rdt.BHMR,
		Handler: func(node *rdt.Node, from int, payload []byte) {
			if string(payload) == "token" {
				// Pass the token to the next process, once around the ring.
				next := (node.Proc() + 1) % n
				if next != from {
					_ = node.Send(next, []byte("pass"))
				}
			}
		},
	})
	if err != nil {
		return fmt.Errorf("start cluster: %w", err)
	}

	// Drive the system: tokens plus some independent (basic) checkpoints.
	for round := 0; round < 5; round++ {
		if err := c.Node(0).Send(1, []byte("token")); err != nil {
			return err
		}
		if err := c.Node(round % n).Checkpoint(); err != nil {
			return err
		}
	}
	c.Quiesce()

	st, err := c.Node(0).Status()
	if err != nil {
		return err
	}
	fmt.Printf("process 0: interval=%d basic=%d forced=%d tdv=%v\n",
		st.Interval, st.Basic, st.Forced, st.TDV)

	pattern, err := c.Stop()
	if err != nil {
		return fmt.Errorf("stop cluster: %w", err)
	}

	stats := pattern.Stats()
	fmt.Printf("recorded pattern: %d messages, %d basic + %d forced checkpoints\n",
		stats.Messages, stats.Basic, stats.Forced)

	// Certify the RDT property offline against the ground-truth oracle.
	report, err := rdt.CheckRDT(pattern, 0)
	if err != nil {
		return fmt.Errorf("check rdt: %w", err)
	}
	fmt.Printf("RDT holds: %v (%d/%d rollback dependencies trackable)\n",
		report.RDT, report.TrackablePairs, report.RPathPairs)

	// Corollary 4.5: the vector recorded with any checkpoint is the
	// minimum consistent global checkpoint containing it.
	target := rdt.CkptID{Proc: 0, Index: 1}
	min, err := rdt.MinConsistentGlobal(pattern, target)
	if err != nil {
		return err
	}
	fmt.Printf("minimum consistent global checkpoint containing %v: %v\n", target, min)
	return nil
}
