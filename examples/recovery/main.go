// Command recovery demonstrates rollback recovery on the concurrent
// runtime: processes run a small replicated-counter application under the
// BHMR protocol over a deliberately unreliable wire (fault injection with
// the reliable delivery layer on top), persist every checkpoint (with its
// dependency vector) to a file-backed store, and then process 0 crashes
// mid-run. Cluster.Recover drives the whole loop — recovery line from the
// stored vectors alone, application states reinstalled, in-transit and
// lost messages replayed into a second incarnation. The second
// incarnation then runs under a Supervisor: when another process
// fail-stops, nobody calls Recover — the heartbeat failure detector
// notices and heals the cluster autonomously. A final, uncoordinated run
// of the same workload in simulation shows the domino effect the
// protocol prevents.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	rdt "github.com/rdt-go/rdt"
)

// counters is the application state: one counter per process, bumped on
// every delivery.
type counters struct {
	mu     sync.Mutex
	values []uint64
}

func (c *counters) bump(proc int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.values[proc]++
}

func (c *counters) snapshot(proc int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, c.values[proc])
	return buf
}

func (c *counters) install(proc int, state []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(state) == 8 {
		c.values[proc] = binary.BigEndian.Uint64(state)
	} else {
		c.values[proc] = 0
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// chaosStack builds the canonical robust transport: reliable delivery
// over an injected-fault wire. The cluster adds its observability
// decorator outermost.
func chaosStack(seed int64) rdt.Transport {
	faulty := rdt.WithFaults(rdt.NewLocalTransport(time.Millisecond), rdt.FaultConfig{
		Seed: seed,
		Default: rdt.FaultProbs{
			Drop: 0.1, Duplicate: 0.1, Reorder: 0.15, SendError: 0.05,
		},
	})
	return rdt.Reliable(faulty, rdt.ReliableConfig{
		Seed:       seed,
		MaxRetries: 100,
		Backoff:    time.Millisecond,
	})
}

func run() error {
	const n = 5
	dir, err := os.MkdirTemp("", "rdt-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	store, err := rdt.NewFileStore(dir)
	if err != nil {
		return err
	}

	app := &counters{values: make([]uint64, n)}
	handler := func(node *rdt.Node, from int, payload []byte) {
		app.bump(node.Proc())
		// Relay half the traffic onward to build cross-process
		// dependencies.
		if len(payload) > 0 && payload[0]%2 == 0 {
			_ = node.Send((node.Proc()+1)%n, payload[1:])
		}
	}
	c, err := rdt.NewCluster(rdt.ClusterConfig{
		N:           n,
		Protocol:    rdt.BHMR,
		Transport:   chaosStack(7),
		Store:       store,
		Snapshot:    app.snapshot,
		LogPayloads: true, // sender-based message log for in-transit replay
		Handler:     handler,
	})
	if err != nil {
		return err
	}

	// Generate work: every process sends around and checkpoints
	// periodically — over a wire that drops, duplicates, and reorders.
	for round := 0; round < 12; round++ {
		for proc := 0; proc < n; proc++ {
			payload := []byte{byte(round), byte(proc)}
			if err := c.Node(proc).Send((proc+2)%n, payload); err != nil {
				return err
			}
		}
		if round%3 == 2 {
			if err := c.Node(round % n).Checkpoint(); err != nil {
				return err
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.QuiesceCtx(ctx); err != nil {
		return fmt.Errorf("quiesce: %w", err)
	}

	// ---- Process 0 crashes; a message sent to it afterwards is lost,
	// and the sender checkpoints past it, so the loss lands inside the
	// recovery line and must be replayed. ----
	if err := c.Node(0).Crash(); err != nil {
		return err
	}
	if err := c.Node(1).Send(0, []byte{99, 1}); err != nil {
		return err
	}
	if err := c.QuiesceCtx(ctx); err != nil {
		return fmt.Errorf("quiesce: %w", err)
	}
	if err := c.Node(1).Checkpoint(); err != nil {
		return err
	}

	// ---- End-to-end recovery: line → restore → GC → replay → resume. ----
	store2, err := rdt.NewFileStore(dir + "-inc2")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir + "-inc2")
	res, err := c.Recover(ctx, rdt.RecoverOptions{
		Store:     store2,
		Transport: chaosStack(8),
		Install: func(cp rdt.StoredCheckpoint) {
			app.install(cp.Proc, cp.State)
		},
		GC: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("incarnation 1 recorded: %+v\n", res.Pattern.Stats())
	fmt.Printf("messages lost to the crash: %d\n", len(res.Lost))
	fmt.Printf("latest stored checkpoints: %v\n", res.Plan.Bounds)
	fmt.Printf("recovery line:             %v\n", res.Plan.Line)
	fmt.Printf("rollback depth per process: %v (total %d intervals lost)\n",
		res.Plan.Depth, res.Plan.TotalRollback())

	// The line the manager computed from dependency vectors alone must
	// match the trace oracle.
	oracle, err := rdt.TraceRecoveryLine(res.Pattern, res.Plan.Bounds)
	if err != nil {
		return err
	}
	fmt.Printf("trace oracle agrees:       %v\n", res.Plan.Line.Equal(oracle))

	fmt.Printf("messages replayed from the log: %d\n", len(res.Replayed))
	for i, m := range res.Replayed {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(res.Replayed)-3)
			break
		}
		fmt.Printf("  replay m%d P%d->P%d (%d bytes)\n", m.ID, m.From, m.To, len(m.Payload))
	}

	// ---- Incarnation 2 keeps computing, again under chaos — and this
	// time under supervision: a heartbeat failure detector watches every
	// process and drives the next recovery itself. ----
	c2 := res.Cluster
	recovered := make(chan *rdt.RecoverResult, 1)
	escalated := make(chan error, 1)
	sup, err := rdt.Supervise(c2, rdt.SupervisorConfig{
		Interval: 2 * time.Millisecond,
		Seed:     9,
		Options: func(incarnation, attempt int) rdt.RecoverOptions {
			return rdt.RecoverOptions{
				Store:     rdt.NewMemoryStore(),
				Transport: chaosStack(900 + int64(incarnation) + int64(attempt)),
				Install: func(cp rdt.StoredCheckpoint) {
					app.install(cp.Proc, cp.State)
				},
			}
		},
		OnRecover:  func(r *rdt.RecoverResult) { recovered <- r },
		OnEscalate: func(err error) { escalated <- err },
	})
	if err != nil {
		return err
	}
	defer sup.Stop()

	for proc := 0; proc < n; proc++ {
		if err := c2.Node(proc).Send((proc+1)%n, []byte{3, byte(proc)}); err != nil {
			return err
		}
	}
	if err := c2.QuiesceCtx(ctx); err != nil {
		return fmt.Errorf("quiesce 2: %w", err)
	}

	// P2 fail-stops. Nobody calls Recover this time: the supervisor sees
	// the heartbeats stop and heals the cluster on its own.
	if err := c2.Node(2).Crash(); err != nil {
		return err
	}
	var res2 *rdt.RecoverResult
	select {
	case res2 = <-recovered:
	case err := <-escalated:
		return fmt.Errorf("supervised recovery escalated: %w", err)
	case <-time.After(time.Minute):
		return fmt.Errorf("supervisor did not self-heal in time")
	}
	c3 := sup.Cluster()
	fmt.Printf("supervisor self-healed: incarnation %d up, %d messages replayed, rollback depth %v\n",
		sup.Incarnation()+1, len(res2.Replayed), res2.Plan.Depth)

	// ---- Incarnation 3, brought up autonomously, keeps computing. ----
	for proc := 0; proc < n; proc++ {
		if err := c3.Node(proc).Send((proc+2)%n, []byte{5, byte(proc)}); err != nil {
			return err
		}
	}
	if err := c3.QuiesceCtx(ctx); err != nil {
		return fmt.Errorf("quiesce 3: %w", err)
	}
	sup.Stop()
	pattern3, err := c3.Stop()
	if err != nil {
		return err
	}
	report, err := rdt.CheckRDT(pattern3, 1)
	if err != nil {
		return err
	}
	fmt.Printf("incarnation 3: %d deliveries recorded, RDT: %v\n\n",
		len(pattern3.Messages), report.RDT)

	return dominoContrast()
}

// dominoContrast runs the same crash experiment over simulated traces to
// show what uncoordinated checkpointing costs.
func dominoContrast() error {
	fmt.Println("domino contrast (simulated random environment, crash of P0):")
	for _, protocol := range []rdt.Protocol{rdt.BHMR, rdt.None} {
		w, err := rdt.WorkloadByName("random")
		if err != nil {
			return err
		}
		cfg := rdt.DefaultSimConfig(protocol, 99)
		cfg.N = 6
		cfg.Duration = 300
		res, err := rdt.Simulate(cfg, w)
		if err != nil {
			return err
		}
		p := res.Pattern
		bounds := make(rdt.GlobalCheckpoint, p.N)
		for i := range bounds {
			bounds[i] = lastAnnotated(p, i)
		}
		line, err := rdt.TraceRecoveryLine(p, bounds)
		if err != nil {
			return err
		}
		lost := 0
		for i := range bounds {
			lost += bounds[i] - line[i]
		}
		fmt.Printf("  %-5v rollback from %v to %v: %d intervals lost\n", protocol, bounds, line, lost)
	}
	return nil
}

// lastAnnotated returns the index of the last protocol-recorded
// checkpoint of a process (final checkpoints only close the trace).
func lastAnnotated(p *rdt.Pattern, proc int) int {
	cs := p.Checkpoints[proc]
	for x := len(cs) - 1; x > 0; x-- {
		if cs[x].TDV != nil {
			return x
		}
	}
	return 0
}
