// Command recovery demonstrates rollback recovery on the concurrent
// runtime: processes run a small replicated-counter application under the
// BHMR protocol, persist every checkpoint (with its dependency vector) to
// a file-backed store, and then process 0 "crashes". The recovery manager
// computes the recovery line from the stored vectors alone, restores the
// application states, and garbage-collects the checkpoints below the
// line. A second, uncoordinated run of the same workload in simulation
// shows the domino effect the protocol prevents.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"sync"

	rdt "github.com/rdt-go/rdt"
)

// counters is the application state: one counter per process, bumped on
// every delivery.
type counters struct {
	mu     sync.Mutex
	values []uint64
}

func (c *counters) bump(proc int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.values[proc]++
}

func (c *counters) snapshot(proc int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, c.values[proc])
	return buf
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	dir, err := os.MkdirTemp("", "rdt-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	store, err := rdt.NewFileStore(dir)
	if err != nil {
		return err
	}

	app := &counters{values: make([]uint64, n)}
	c, err := rdt.NewCluster(rdt.ClusterConfig{
		N:           n,
		Protocol:    rdt.BHMR,
		Store:       store,
		Snapshot:    app.snapshot,
		LogPayloads: true, // sender-based message log for in-transit replay
		Handler: func(node *rdt.Node, from int, payload []byte) {
			app.bump(node.Proc())
			// Relay half the traffic onward to build cross-process
			// dependencies.
			if len(payload) > 0 && payload[0]%2 == 0 {
				_ = node.Send((node.Proc()+1)%n, payload[1:])
			}
		},
	})
	if err != nil {
		return err
	}

	// Generate work: every process sends around and checkpoints
	// periodically.
	for round := 0; round < 12; round++ {
		for proc := 0; proc < n; proc++ {
			payload := []byte{byte(round), byte(proc)}
			if err := c.Node(proc).Send((proc+2)%n, payload); err != nil {
				return err
			}
		}
		if round%3 == 2 {
			if err := c.Node(round % n).Checkpoint(); err != nil {
				return err
			}
		}
	}
	c.Quiesce()
	pattern, err := c.Stop()
	if err != nil {
		return err
	}
	fmt.Printf("run recorded: %+v\n", pattern.Stats())

	// ---- Process 0 crashes. ----
	mgr, err := rdt.NewRecoveryManager(store, n)
	if err != nil {
		return err
	}
	plan, err := mgr.AfterCrash(0)
	if err != nil {
		return err
	}
	fmt.Printf("latest stored checkpoints: %v\n", plan.Bounds)
	fmt.Printf("recovery line:             %v\n", plan.Line)
	fmt.Printf("rollback depth per process: %v (total %d intervals lost)\n",
		plan.Depth, plan.TotalRollback())

	// The line the manager computed from dependency vectors alone must
	// match the trace oracle.
	oracle, err := rdt.TraceRecoveryLine(pattern, plan.Bounds)
	if err != nil {
		return err
	}
	fmt.Printf("trace oracle agrees:       %v\n", plan.Line.Equal(oracle))

	// Reinstall the application states recorded at the line.
	cps, err := mgr.Restore(plan.Line)
	if err != nil {
		return err
	}
	for _, cp := range cps {
		value := uint64(0)
		if len(cp.State) == 8 {
			value = binary.BigEndian.Uint64(cp.State)
		}
		fmt.Printf("  P%d restarts from C{%d,%d} with counter=%d\n", cp.Proc, cp.Proc, cp.Index, value)
	}

	// Messages that were in the channels at the recovery line are lost by
	// the rollback; the sender-based message log replays them.
	inTransit, err := rdt.InTransit(pattern, plan.Line)
	if err != nil {
		return err
	}
	fmt.Printf("in-transit messages to replay from the log: %d\n", len(inTransit))
	for i, m := range inTransit {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(inTransit)-3)
			break
		}
		payload, ok := c.Payload(m.ID)
		fmt.Printf("  replay m%d P%d->P%d (payload logged: %v, %d bytes)\n",
			m.ID, m.From, m.To, ok, len(payload))
	}

	// Checkpoints below the line are dead weight.
	removed, err := mgr.GC(plan.Line)
	if err != nil {
		return err
	}
	fmt.Printf("garbage-collected %d obsolete checkpoints\n", removed)

	// ---- Incarnation 2: resume the computation. ----
	replaySet, err := rdt.ReplaySet(pattern, plan.Line, c.Payload)
	if err != nil {
		return err
	}
	for i, cp := range cps {
		if len(cp.State) == 8 {
			app.mu.Lock()
			app.values[i] = binary.BigEndian.Uint64(cp.State)
			app.mu.Unlock()
		}
	}
	store2, err := rdt.NewFileStore(dir + "-inc2")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir + "-inc2")
	c2, err := rdt.Resume(rdt.ClusterConfig{
		N:        n,
		Protocol: rdt.BHMR,
		Store:    store2,
		Snapshot: app.snapshot,
		Handler: func(node *rdt.Node, from int, payload []byte) {
			app.bump(node.Proc())
		},
	}, replaySet)
	if err != nil {
		return err
	}
	c2.Quiesce()
	pattern2, err := c2.Stop()
	if err != nil {
		return err
	}
	report, err := rdt.CheckRDT(pattern2, 1)
	if err != nil {
		return err
	}
	fmt.Printf("incarnation 2: replayed %d in-transit messages, %d deliveries recorded, RDT: %v\n\n",
		len(replaySet), len(pattern2.Messages), report.RDT)

	return dominoContrast()
}

// dominoContrast runs the same crash experiment over simulated traces to
// show what uncoordinated checkpointing costs.
func dominoContrast() error {
	fmt.Println("domino contrast (simulated random environment, crash of P0):")
	for _, protocol := range []rdt.Protocol{rdt.BHMR, rdt.None} {
		w, err := rdt.WorkloadByName("random")
		if err != nil {
			return err
		}
		cfg := rdt.DefaultSimConfig(protocol, 99)
		cfg.N = 6
		cfg.Duration = 300
		res, err := rdt.Simulate(cfg, w)
		if err != nil {
			return err
		}
		p := res.Pattern
		bounds := make(rdt.GlobalCheckpoint, p.N)
		for i := range bounds {
			bounds[i] = lastAnnotated(p, i)
		}
		line, err := rdt.TraceRecoveryLine(p, bounds)
		if err != nil {
			return err
		}
		lost := 0
		for i := range bounds {
			lost += bounds[i] - line[i]
		}
		fmt.Printf("  %-5v rollback from %v to %v: %d intervals lost\n", protocol, bounds, line, lost)
	}
	return nil
}

// lastAnnotated returns the index of the last protocol-recorded
// checkpoint of a process (final checkpoints only close the trace).
func lastAnnotated(p *rdt.Pattern, proc int) int {
	cs := p.Checkpoints[proc]
	for x := len(cs) - 1; x > 0; x-- {
		if cs[x].TDV != nil {
			return x
		}
	}
	return 0
}
