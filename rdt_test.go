package rdt_test

import (
	"bytes"
	"path/filepath"
	"testing"

	rdt "github.com/rdt-go/rdt"
)

func TestPublicProtocolRegistry(t *testing.T) {
	if len(rdt.Protocols()) != 10 {
		t.Errorf("protocols = %v", rdt.Protocols())
	}
	if len(rdt.RDTProtocols()) != 8 || len(rdt.RDTProtocols()) >= len(rdt.Protocols())-1 {
		t.Errorf("rdt protocols = %v", rdt.RDTProtocols())
	}
	p, err := rdt.ParseProtocol("bhmr")
	if err != nil || p != rdt.BHMR {
		t.Errorf("parse bhmr = %v, %v", p, err)
	}
	if _, err := rdt.ParseProtocol("nope"); err == nil {
		t.Error("parsed unknown protocol")
	}
}

func TestPublicSimulateAndAnalyze(t *testing.T) {
	w, err := rdt.WorkloadByName("random")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	cfg := rdt.DefaultSimConfig(rdt.BHMR, 5)
	cfg.N = 4
	cfg.Duration = 80
	res, err := rdt.Simulate(cfg, w)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	report, err := rdt.CheckRDT(res.Pattern, 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !report.RDT {
		t.Fatalf("violations: %v", report.Violations)
	}
	if err := rdt.VerifyRecordedTDVs(res.Pattern); err != nil {
		t.Fatalf("tdvs: %v", err)
	}

	// Consistency helpers over the public surface.
	target := rdt.CkptID{Proc: 1, Index: 1}
	min, err := rdt.MinConsistentGlobal(res.Pattern, target)
	if err != nil {
		t.Fatalf("min: %v", err)
	}
	max, err := rdt.MaxConsistentGlobal(res.Pattern, target)
	if err != nil {
		t.Fatalf("max: %v", err)
	}
	if !min.DominatedBy(max) {
		t.Errorf("min %v not below max %v", min, max)
	}
	ok, err := rdt.IsConsistent(res.Pattern, min)
	if err != nil || !ok {
		t.Errorf("min inconsistent: %v %v", ok, err)
	}
	line, err := rdt.TraceRecoveryLine(res.Pattern, max)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	if !line.Equal(max) {
		t.Errorf("recovery line below a consistent cut should be that cut: %v vs %v", line, max)
	}
}

func TestPublicWorkloadRegistry(t *testing.T) {
	if len(rdt.WorkloadNames()) != 5 {
		t.Errorf("workloads = %v", rdt.WorkloadNames())
	}
	if _, err := rdt.WorkloadByName("mars"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	p, err := rdt.Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	var buf bytes.Buffer
	if err := rdt.SaveTrace(&buf, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := rdt.LoadTrace(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.N != 3 {
		t.Errorf("N = %d", got.N)
	}
	path := filepath.Join(t.TempDir(), "fig.json")
	if err := rdt.SaveTraceFile(path, p); err != nil {
		t.Fatalf("save file: %v", err)
	}
	if _, err := rdt.LoadTraceFile(path); err != nil {
		t.Fatalf("load file: %v", err)
	}
}

func TestPublicPatternBuilder(t *testing.T) {
	b := rdt.NewPatternBuilder(2)
	m := b.Send(0, 1)
	b.Checkpoint(0, rdt.KindBasic, nil)
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	g, err := rdt.BuildRGraph(p)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	if !g.HasRPath(rdt.CkptID{Proc: 0, Index: 1}, rdt.CkptID{Proc: 1, Index: 1}) {
		t.Error("message edge missing from public graph")
	}
	chains, err := rdt.NewChains(p)
	if err != nil {
		t.Fatalf("chains: %v", err)
	}
	if !chains.HasCausalChain(rdt.CkptID{Proc: 0, Index: 1}, rdt.CkptID{Proc: 1, Index: 1}) {
		t.Error("causal chain missing")
	}
}

func TestPublicClusterAndRecovery(t *testing.T) {
	store := rdt.NewMemoryStore()
	c, err := rdt.NewCluster(rdt.ClusterConfig{
		N:        3,
		Protocol: rdt.BHMR,
		Store:    store,
		Snapshot: func(proc int) []byte { return []byte{byte(proc)} },
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	for i := 0; i < 6; i++ {
		if err := c.Node(i%3).Send((i+1)%3, []byte("m")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Node(1).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	c.Quiesce()
	st, err := c.Node(1).Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Basic != 1 {
		t.Errorf("status = %+v", st)
	}
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 6 {
		t.Errorf("messages = %d", len(p.Messages))
	}

	mgr, err := rdt.NewRecoveryManager(store, 3)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	plan, err := mgr.AfterCrash(0)
	if err != nil {
		t.Fatalf("after crash: %v", err)
	}
	if len(plan.Line) != 3 {
		t.Errorf("plan = %+v", plan)
	}
	cps, err := mgr.Restore(plan.Line)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(cps) != 3 {
		t.Errorf("restored = %d", len(cps))
	}
}

func TestPublicFileStoreAndTransports(t *testing.T) {
	fs, err := rdt.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("file store: %v", err)
	}
	if err := fs.Put(rdt.StoredCheckpoint{Proc: 0, Index: 0, TDV: []int{0, 0}}); err != nil {
		t.Fatalf("put: %v", err)
	}
	tcp, err := rdt.NewTCPTransport(2)
	if err != nil {
		t.Fatalf("tcp: %v", err)
	}
	c, err := rdt.NewCluster(rdt.ClusterConfig{N: 2, Transport: tcp, Store: fs})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if err := c.Node(0).Send(1, []byte("over tcp")); err != nil {
		t.Fatalf("send: %v", err)
	}
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 1 {
		t.Errorf("messages = %d", len(p.Messages))
	}

	local := rdt.NewLocalTransport(0)
	if err := local.Close(); err != nil {
		t.Errorf("close local: %v", err)
	}
}

func TestPublicProtocolInstance(t *testing.T) {
	var records []rdt.CheckpointRecord
	inst, err := rdt.NewProtocolInstance(rdt.FDAS, 0, 2, func(r rdt.CheckpointRecord) {
		records = append(records, r)
	})
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	inst.TakeBasicCheckpoint()
	if len(records) != 2 { // initial + basic
		t.Errorf("records = %v", records)
	}
	if inst.CurrentInterval() != 2 {
		t.Errorf("interval = %d", inst.CurrentInterval())
	}
}
